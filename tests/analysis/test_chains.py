"""Offline chain analysis (Figs 9-11) on hand-built traces."""

import pytest

from repro.analysis.chains import (
    chain_pc_fraction,
    chain_predictable_fraction,
    load_transitions,
    max_chain_repetition,
    mta_predictable_fraction,
    repeated_transitions,
)
from repro.gpusim.trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace


def warp_from(pairs, warp_id=0):
    return WarpTrace(
        warp_id=warp_id,
        instrs=[
            WarpInstr(pc=pc, op=Op.LOAD, base_addr=addr, thread_stride=4)
            for pc, addr in pairs
        ],
    )


def kernel_from(*warps):
    return KernelTrace(name="t", ctas=[CTA(cta_id=0, warps=list(warps))])


class TestTransitions:
    def test_load_transitions(self):
        warp = warp_from([(1, 0), (2, 400), (3, 40800)])
        assert load_transitions(warp) == [(1, 2, 400), (2, 3, 40400)]

    def test_repeated_transitions_threshold(self):
        warp = warp_from([(1, 0), (2, 400), (1, 1000), (2, 1400), (3, 9)])
        repeated = repeated_transitions(warp)
        assert repeated == {(1, 2, 400): 2}


class TestFig9:
    def test_pure_chain_is_full_fraction(self):
        pairs = [(1, 0), (2, 400)] * 5
        # addresses must make the stride repeat
        pairs = [(1, i * 1000), (2, i * 1000 + 400)] if False else None
        warp = warp_from(
            [(pc, i * 1000 + (400 if pc == 2 else 0))
             for i in range(5) for pc in (1, 2)]
        )
        assert chain_pc_fraction(kernel_from(warp)) == 1.0

    def test_random_trace_is_zero(self):
        warp = warp_from([(i, i * 7919 % 100_000) for i in range(20)])
        assert chain_pc_fraction(kernel_from(warp)) == 0.0

    def test_empty_loads(self):
        warp = WarpTrace(warp_id=0, instrs=[WarpInstr(pc=1, op=Op.ALU)])
        assert chain_pc_fraction(kernel_from(warp)) == 0.0


class TestFig10:
    def test_repetition_count(self):
        warp = warp_from(
            [(pc, i * 1000 + (400 if pc == 2 else 0))
             for i in range(7) for pc in (1, 2)]
        )
        assert max_chain_repetition(kernel_from(warp)) == 7

    def test_no_chains_is_zero(self):
        warp = warp_from([(i, i * 7919 % 100_000) for i in range(10)])
        assert max_chain_repetition(kernel_from(warp)) == 0


class TestFig11:
    def test_chain_fraction_counts_cross_warp_learning(self):
        # warp 0 teaches the chain; warp 1's accesses are all predictable
        w0 = warp_from([(1, 0), (2, 400), (1, 1000), (2, 1400)], warp_id=0)
        w1 = warp_from([(1, 50_000), (2, 50_400)], warp_id=1)
        fraction = chain_predictable_fraction(kernel_from(w0, w1))
        # transitions: w0 has 3 (1 repeated), w1 has 1 (known) -> 2/6 loads...
        # predictable accesses: w0's second (1,2,400) and w1's (1,2,400)
        assert fraction == pytest.approx(2 / 6)

    def test_mta_intra_detection(self):
        w = warp_from([(1, 0), (1, 512), (1, 1024), (1, 1536)])
        assert mta_predictable_fraction(kernel_from(w)) == pytest.approx(2 / 4)

    def test_chains_superset_on_variable_strides(self):
        # alternating strides: MTA's fixed-stride detector fails, chains win
        pairs = []
        addr = 0
        for i in range(8):
            pairs.append((1, addr))
            pairs.append((2, addr + 400))
            addr += 10_000
        w = warp_from(pairs)
        kernel = kernel_from(w)
        assert chain_predictable_fraction(kernel) > mta_predictable_fraction(kernel)

    def test_empty_kernel(self):
        w = WarpTrace(warp_id=0)
        assert chain_predictable_fraction(kernel_from(w)) == 0.0
        assert mta_predictable_fraction(kernel_from(w)) == 0.0
