"""Experiment harness: smoke runs at tiny scale plus structural checks."""

import pytest

from repro.analysis import experiments
from repro.workloads import BENCHMARKS

SCALE = 0.15  # keep unit tests fast; benches run the full scale
SEED = 2


class TestRunApp:
    def test_baseline(self):
        stats = experiments.run_app("lps", "none", scale=SCALE, seed=SEED)
        assert stats.instructions > 0

    def test_mechanism_kwargs_forwarded(self):
        stats = experiments.run_app(
            "lps", "snake", scale=SCALE, seed=SEED, eviction="pop"
        )
        assert stats.instructions > 0


class TestSweepCache:
    def test_memoized(self):
        a = experiments.comparison_sweep(["none"], apps=["lps"], scale=SCALE, seed=SEED)
        b = experiments.comparison_sweep(["none"], apps=["lps"], scale=SCALE, seed=SEED)
        assert a is b

    def test_distinct_keys(self):
        a = experiments.comparison_sweep(["none"], apps=["lps"], scale=SCALE, seed=SEED)
        b = experiments.comparison_sweep(["none"], apps=["lps"], scale=SCALE, seed=SEED + 1)
        assert a is not b


class TestMotivationFigures:
    def test_fig3_rates_in_unit_range(self):
        series = experiments.figure3(scale=SCALE, seed=SEED)
        assert set(BENCHMARKS) <= set(series)
        assert all(0.0 <= v <= 1.0 for v in series.values())
        assert "mean" in series

    def test_fig4_bandwidth(self):
        series = experiments.figure4(scale=SCALE, seed=SEED)
        assert all(0.0 <= v <= 1.0 for v in series.values())

    def test_fig5_memory_stalls_dominate(self):
        series = experiments.figure5(scale=SCALE, seed=SEED)
        assert series["mean"] > 0.5  # memory-bound by construction


class TestChainFigures:
    def test_fig9(self):
        series = experiments.figure9(scale=SCALE, seed=SEED)
        assert series["lps"] > 0.8
        assert all(0.0 <= v <= 1.0 for v in series.values())

    def test_fig10(self):
        series = experiments.figure10(scale=SCALE, seed=SEED)
        assert series["mean"] > 1.0

    def test_fig11_chains_beat_mta(self):
        data = experiments.figure11(scale=0.5, seed=SEED)
        assert data["chains"]["mean"] > data["mta"]["mean"]


class TestSensitivity:
    def test_fig21_monotonic(self):
        sweep = experiments.figure21((2, 10, 40))
        assert sweep[2] < sweep[10] < sweep[40]

    def test_table3_matches_paper(self):
        table = experiments.table3()
        assert table["head"]["total_bytes"] == 448
        assert table["tail"]["total_bytes"] == 320


class TestTiling:
    def test_fig24_structure(self):
        data = experiments.figure24(tile_fracs=(0.5,), scale=0.3, seed=SEED)
        assert set(data) == {0.5}
        assert set(data[0.5]) == {"tiled", "snake+tiled"}
        ipc, energy = data[0.5]["tiled"]
        assert ipc > 0 and energy > 0

    def test_tiling_beats_streaming(self):
        data = experiments.figure24(tile_fracs=(0.5,), scale=0.3, seed=SEED)
        assert data[0.5]["tiled"][0] > 1.0  # reuse must help IPC
