"""Per-PC profiler."""

from repro.analysis.profile import PCProfile, profile_kernel


class TestPCProfile:
    def test_rates_guard_zero(self):
        profile = PCProfile(pc=0x10)
        assert profile.hit_rate == 0.0
        assert profile.coverage == 0.0

    def test_rates(self):
        profile = PCProfile(pc=0x10, accesses=10, hits=6, covered=4, timely=3)
        assert profile.hit_rate == 0.6
        assert profile.coverage == 0.4

    def test_as_row_mentions_pc(self):
        assert "0x10" in PCProfile(pc=0x10, accesses=1).as_row()


class TestProfileKernel:
    def test_histo_scatter_pc_uncovered(self):
        """Snake must cover the regular input PCs but not the bin scatter."""
        rows = {r.pc: r for r in profile_kernel("histo", "snake", scale=0.4)}
        assert rows[0xA20].coverage < 0.1  # data-dependent bin reads
        assert rows[0xA10].coverage > rows[0xA20].coverage

    def test_access_counts_cover_trace(self):
        # accesses are per line transaction (including replays), so the
        # total is at least one per static load executed
        from repro.workloads import build_kernel

        rows = profile_kernel("cp", "none", scale=0.3)
        kernel = build_kernel("cp", scale=0.3, seed=1)
        trace_loads = sum(len(w.loads()) for w in kernel.all_warps())
        assert sum(r.accesses for r in rows) >= trace_loads

    def test_sorted_by_access_count(self):
        rows = profile_kernel("lps", "snake", scale=0.3)
        counts = [r.accesses for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_baseline_has_no_coverage(self):
        rows = profile_kernel("lps", "none", scale=0.3)
        assert all(r.covered == 0 for r in rows)
