"""CSV/JSON export of experiment results."""

import csv
import json

from repro.analysis.export import flatten, to_csv, to_json


class TestFlatten:
    def test_series(self):
        header, rows = flatten({"cp": 0.5, "lps": 0.7})
        assert header == ["key", "value"]
        assert ["cp", 0.5] in rows

    def test_matrix(self):
        header, rows = flatten({"snake": {"cp": 0.9}})
        assert header == ["row", "column", "value"]
        assert rows == [["snake", "cp", 0.9]]

    def test_sweep_tuples(self):
        header, rows = flatten({50: (0.7, 0.75)})
        assert header == ["key", "value_0", "value_1"]
        assert rows == [[50, 0.7, 0.75]]

    def test_empty(self):
        header, rows = flatten({})
        assert rows == []


class TestWriters:
    def test_csv_roundtrip(self, tmp_path):
        path = to_csv({"cp": 1, "lps": 2}, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["key", "value"]
        assert ["lps", "2"] in rows

    def test_json_roundtrip(self, tmp_path):
        path = to_json({50: (0.7, 0.8)}, tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert data == {"50": [0.7, 0.8]}

    def test_json_nested(self, tmp_path):
        path = to_json({"snake": {"cp": 0.9}}, tmp_path / "m.json")
        assert json.loads(path.read_text()) == {"snake": {"cp": 0.9}}


class TestCLIExport:
    def test_cli_writes_files(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "t3.csv"
        json_path = tmp_path / "t3.json"
        assert main(["table3", "--csv", str(csv_path), "--json", str(json_path)]) == 0
        assert csv_path.exists() and json_path.exists()
        data = json.loads(json_path.read_text())
        assert data["head"]["total_bytes"] == 448
