"""Graceful degradation: FAILED cells flow through figures, reports and
exports as markers instead of crashing the pipeline."""

import json

from repro.analysis import export, report
from repro.analysis.experiments import (
    _with_mean,
    figure16_from,
    figure17_from,
    figure18_from,
    figure19_from,
)
from repro.gpusim.stats import SimStats
from repro.runner import FailedResult


def _stats(cycles=100, instructions=200):
    return SimStats(cycles=cycles, instructions=instructions)


def _hung():
    return FailedResult(kind="SimulationHang", message="watchdog fired")


def _sweep_with_failed_cell():
    return {
        "lps": {"none": _stats(100, 150), "snake": _stats(100, 300)},
        "hotspot": {"none": _stats(100, 100), "snake": _hung()},
    }


class TestWithMean:
    def test_failed_values_excluded_from_the_mean(self):
        series = {"a": 2.0, "b": _hung(), "c": 4.0}
        out = _with_mean(series)
        assert out["mean"] == 3.0
        assert out["b"] is series["b"]

    def test_all_failed_means_zero(self):
        assert _with_mean({"a": _hung()})["mean"] == 0.0


class TestFigureHelpers:
    def test_figure16_keeps_the_marker(self):
        fig = figure16_from(_sweep_with_failed_cell())
        assert isinstance(fig["snake"]["hotspot"], FailedResult)
        assert isinstance(fig["snake"]["lps"], float)

    def test_figure17_keeps_the_marker(self):
        fig = figure17_from(_sweep_with_failed_cell())
        assert isinstance(fig["snake"]["hotspot"], FailedResult)

    def test_figure18_ratios_and_markers(self):
        fig = figure18_from(_sweep_with_failed_cell())
        assert fig["snake"]["lps"] == 2.0  # 300/150
        assert isinstance(fig["snake"]["hotspot"], FailedResult)
        assert fig["snake"]["mean"] == 2.0  # failed cell excluded

    def test_figure18_failed_baseline_poisons_the_ratio(self):
        sweep = {"lps": {"none": _hung(), "snake": _stats()}}
        fig = figure18_from(sweep)
        assert isinstance(fig["snake"]["lps"], FailedResult)

    def test_figure19_keeps_the_marker(self):
        fig = figure19_from(_sweep_with_failed_cell())
        assert isinstance(fig["snake"]["hotspot"], FailedResult)
        assert isinstance(fig["snake"]["lps"], float)


class TestRendering:
    def test_matrix_shows_failed_marker(self):
        text = report.render_matrix(
            "fig", figure16_from(_sweep_with_failed_cell()), percent=True
        )
        assert "FAILED(SimulationHang)" in text

    def test_series_with_failed_value_renders(self):
        text = report.render_series("fig", {"ok": 0.5, "bad": _hung()})
        assert "FAILED(SimulationHang)" in text
        assert "#" in text  # the healthy cell still gets its bar


class TestExport:
    def test_json_export_coerces_markers(self, tmp_path):
        path = export.to_json(
            figure18_from(_sweep_with_failed_cell()), tmp_path / "fig.json"
        )
        data = json.loads(path.read_text())
        assert data["snake"]["hotspot"] == "FAILED(SimulationHang)"
        assert data["snake"]["lps"] == 2.0

    def test_csv_export_writes_markers(self, tmp_path):
        path = export.to_csv(
            figure18_from(_sweep_with_failed_cell()), tmp_path / "fig.csv"
        )
        assert "FAILED(SimulationHang)" in path.read_text()
