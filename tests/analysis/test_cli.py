"""CLI entry point."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestArgs:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "table3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "448" in out and "320" in out

    def test_fig21_needs_no_simulation(self, capsys):
        assert main(["fig21"]) == 0
        assert "bytes" in capsys.readouterr().out

    def test_series_experiment_with_scale(self, capsys):
        assert main(["fig9", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "lps" in out and "mean" in out


class TestSweepCommand:
    ARGS = [
        "sweep", "--apps", "lps", "--mechanisms", "none,snake",
        "--jobs", "0", "--scale", "0.05",
    ]

    def test_sweep_lists_in_list(self, capsys):
        assert main(["list"]) == 0
        assert "sweep" in capsys.readouterr().out.split()

    def test_sweep_runs_and_reports(self, tmp_path, capsys):
        ckpt = tmp_path / "sweep.jsonl"
        assert main(self.ARGS + ["--checkpoint", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 reused" in out
        assert "0 failed" in out
        assert "coverage" in out
        assert ckpt.exists()

    def test_sweep_resumes_from_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "sweep.jsonl"
        assert main(self.ARGS + ["--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--checkpoint", str(ckpt), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 reused" in out

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["sweep", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_failed_cell_sets_exit_code(self, tmp_path, capsys):
        assert main(
            [
                "sweep", "--apps", "no-such-app", "--mechanisms", "none",
                "--jobs", "0", "--scale", "0.05",
            ]
        ) == 3
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "1 failed" in out


class TestRegistryCompleteness:
    def test_every_eval_figure_present(self):
        expected = {
            "fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
            "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
            "fig22", "fig23", "fig24", "fig25", "table3",
        }
        assert expected == set(EXPERIMENTS)
