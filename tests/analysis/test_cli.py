"""CLI entry point."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestArgs:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "table3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "448" in out and "320" in out

    def test_fig21_needs_no_simulation(self, capsys):
        assert main(["fig21"]) == 0
        assert "bytes" in capsys.readouterr().out

    def test_series_experiment_with_scale(self, capsys):
        assert main(["fig9", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "lps" in out and "mean" in out


class TestRegistryCompleteness:
    def test_every_eval_figure_present(self):
        expected = {
            "fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
            "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
            "fig22", "fig23", "fig24", "fig25", "table3",
        }
        assert expected == set(EXPERIMENTS)
