"""Integration tests for the asyncio shell: a real server on an
ephemeral port, driven by a real client over the frame protocol."""

import asyncio

import pytest

from repro.obs.events import EventBus, EventKind
from repro.runner.transport import VirtualClock
from repro.serve import (
    PrefetchServer,
    ServeClient,
    ServeSettings,
)
from repro.serve.journal import Journal
from repro.serve.protocol import HEADER, encode_frame


class _Collector:
    """Minimal obs sink: keeps every event for assertions."""

    def __init__(self):
        self.events = []

    def accept(self, event):
        self.events.append(event)

    def close(self):
        pass


def run(coro):
    return asyncio.run(coro)


async def _start(tmp_path, **overrides):
    settings = ServeSettings(data_dir=str(tmp_path / "data"), **overrides)
    server = PrefetchServer(settings)
    await server.start()
    return server


async def _connect(server):
    return await ServeClient.connect("127.0.0.1", server.port)


def test_request_response_lifecycle(tmp_path):
    async def scenario():
        server = await _start(tmp_path)
        client = await _connect(server)
        assert (await client.request({"op": "ping"}))["pong"] is True

        hello = await client.request({"op": "hello", "client": "x", "seq": 0})
        assert hello["ok"] and hello["session"] == "new"

        seq = 0
        for i in range(20):
            # Several warps agreeing on a two-PC transition: the pattern
            # that actually trains Snake chains.
            for pc, base in ((16, 4096), (24, 1 << 20)):
                seq += 1
                response = await client.request({
                    "op": "access", "warp": i % 4, "pc": pc,
                    "addr": base + 64 * i, "seq": seq,
                })
                assert response["ok"] and response["seq"] == seq

        predict = await client.request({
            "op": "predict", "warp": 0, "pc": 16, "addr": 4096 + 64 * 20,
        })
        assert predict["ok"] and predict["predictions"]

        stats = await client.request({"op": "stats", "digest": True})
        assert stats["ready"] is True and stats["sessions"] == 1
        assert stats["seq"] == seq + 1 and len(stats["digest"]) == 64

        bye = await client.request({"op": "bye"})
        assert bye["ok"] and bye["bye"] is True
        await client.close()
        await server.stop()
        return server

    server = run(scenario())
    assert server.stats.acked > 30


def test_access_before_hello_is_a_protocol_nack(tmp_path):
    async def scenario():
        server = await _start(tmp_path)
        client = await _connect(server)
        response = await client.request(
            {"op": "access", "warp": 0, "pc": 8, "addr": 64})
        await client.close()
        await server.stop()
        return response

    response = run(scenario())
    assert response["error"] == "protocol"


def test_malformed_frame_nacked_connection_survives(tmp_path):
    async def scenario():
        server = await _start(tmp_path)
        client = await _connect(server)
        client.writer.write(HEADER.pack(7) + b"garbage")
        await client.writer.drain()
        first = await client.read_response()
        second = await client.request({"op": "ping"})
        await client.close()
        await server.stop()
        return first, second, server

    first, second, server = run(scenario())
    assert first["error"] == "malformed"
    assert second["pong"] is True
    assert server.stats.malformed == 1


def test_oversized_declared_length_kills_connection(tmp_path):
    async def scenario():
        server = await _start(tmp_path, max_frame=128)
        client = await _connect(server)
        client.writer.write(HEADER.pack(1 << 20))
        await client.writer.drain()
        response = await client.read_response()
        # Framing is lost, so the server must hang up after the NACK.
        with pytest.raises(asyncio.IncompleteReadError):
            await client.reader.readexactly(4)
        await client.close()
        await server.stop()
        return response

    response = run(scenario())
    assert response["error"] == "malformed"


def test_slow_loris_gets_evicted_with_a_nack(tmp_path):
    async def scenario():
        server = await _start(tmp_path, frame_timeout_s=0.2)
        client = await _connect(server)
        client.writer.write(HEADER.pack(64))    # payload never follows
        await client.writer.drain()
        response = await asyncio.wait_for(client.read_response(), 10.0)
        await client.close()
        await server.stop()
        return response, server

    response, server = run(scenario())
    assert response["error"] == "slow-client"
    assert server.stats.evicted_slow == 1


def test_overload_sheds_with_explicit_nack(tmp_path):
    """A stalled worker + depth-1 queue: the request holding the slot
    pends, every overflowing request gets an overload NACK with retry
    advice — never silence."""
    async def scenario():
        server = await _start(tmp_path, queue_depth=1)
        # Stall the single mutation worker so the queue cannot drain.
        server._worker_task.cancel()
        try:
            await server._worker_task
        except asyncio.CancelledError:
            pass

        # Three connections: the first's hello occupies the only queue
        # slot (its response pends), the other two must be shed.
        holder = await _connect(server)
        holder.writer.write(encode_frame({"op": "hello", "client": "c0"}))
        await holder.writer.drain()
        await asyncio.sleep(0.1)      # let it occupy the slot
        sheds = []
        for i in (1, 2):
            client = await _connect(server)
            response = await client.request(
                {"op": "hello", "client": "c%d" % i, "seq": i})
            sheds.append(response)
            await client.close()
        await holder.close()
        server._queue = None          # stop(): skip joining the held slot
        await server.stop()
        return sheds, server

    sheds, server = run(scenario())
    assert all(r["error"] == "overload" for r in sheds)
    assert all(r["retry_after_s"] > 0 for r in sheds)
    assert server.stats.shed == 2
    assert server.stats.nacked["overload"] == 2


def test_deadline_nack_for_requests_that_aged_in_queue(tmp_path):
    async def scenario():
        clock = VirtualClock(0.0)
        settings = ServeSettings(data_dir=str(tmp_path / "data"),
                                 deadline_s=1.0)
        server = PrefetchServer(settings, clock=clock)
        await server.start()
        client = await _connect(server)
        # Freeze the worker, enqueue, age the clock, then let it run.
        server._worker_task.cancel()
        try:
            await server._worker_task
        except asyncio.CancelledError:
            pass
        client.writer.write(
            encode_frame({"op": "hello", "client": "late", "seq": 5}))
        await client.writer.drain()
        await asyncio.sleep(0.1)      # let the request reach the queue
        clock.advance(10.0)           # it ages past the deadline budget
        server._worker_task = asyncio.ensure_future(server._worker())
        response = await asyncio.wait_for(client.read_response(), 10.0)
        await client.close()
        await server.stop()
        return response

    response = run(scenario())
    assert response["error"] == "deadline"
    assert response["seq"] == 5


def test_drain_nacks_shutdown(tmp_path):
    async def scenario():
        server = await _start(tmp_path)
        client = await _connect(server)
        await client.request({"op": "hello", "client": "x"})
        server.draining = True        # drain begins mid-connection
        response = await client.request(
            {"op": "access", "warp": 0, "pc": 8, "addr": 64})
        await client.close()
        server.draining = False
        await server.stop()
        return response

    assert run(scenario())["error"] == "shutdown"


def test_restart_recovers_byte_identical_state(tmp_path):
    async def scenario():
        server = await _start(tmp_path, snapshot_every=10)
        client = await _connect(server)
        await client.request({"op": "hello", "client": "x"})
        for i in range(25):
            await client.request({"op": "access", "warp": 0, "pc": 16,
                                  "addr": 4096 + 64 * i})
        stats = await client.request({"op": "stats", "digest": True})
        await client.close()
        await server.stop()

        # Simulate the kill -9 disk signature on top of the stopped state.
        Journal(tmp_path / "data").tear()

        revived = await _start(tmp_path, snapshot_every=10)
        client = await _connect(revived)
        hello = await client.request({"op": "hello", "client": "x"})
        stats2 = await client.request({"op": "stats", "digest": True})
        await client.close()
        await revived.stop()
        return stats, hello, stats2, revived

    stats, hello, stats2, revived = run(scenario())
    assert hello["session"] == "resumed"
    assert stats2["digest"] == stats["digest"]
    assert revived.recovery is not None
    assert revived.recovery.quarantined == 1


def test_serve_events_reach_the_bus(tmp_path):
    async def scenario():
        collector = _Collector()
        bus = EventBus(sinks=[collector])
        settings = ServeSettings(data_dir=str(tmp_path / "data"))
        server = PrefetchServer(settings, obs=bus)
        await server.start()
        client = await _connect(server)
        await client.request({"op": "hello", "client": "x"})
        await client.request({"op": "access", "warp": 0, "pc": 8, "addr": 64})
        await client.close()
        await server.stop()
        return collector

    collector = run(scenario())
    actions = [e.action for e in collector.events
               if e.kind == EventKind.SERVE]
    assert "recover" in actions
    assert "accept" in actions
    assert "drain" in actions and "snapshot" in actions


def test_port_file_advertises_ephemeral_port(tmp_path):
    async def scenario():
        server = await _start(tmp_path)
        port_file = tmp_path / "data" / "serve.port"
        advertised = int(port_file.read_text().strip())
        await server.stop()
        return advertised, server.port

    advertised, bound = run(scenario())
    assert advertised == bound
