"""Durability: snapshot + WAL recovery, torn tails, idempotence guards."""

import json

import pytest

from repro.serve.journal import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    Journal,
    JournalError,
)
from repro.serve.state import ServeConfig, ServiceState


def _drive(state, journal, client, n, pc=16, base=4096):
    for i in range(n):
        state.apply(client, 0, pc, base + 64 * i)
        journal.record_access(state.seq, client, 0, pc, base + 64 * i, 0)
        journal.maybe_snapshot(state)


_CONFIG = ServeConfig(shards=2)


def _fresh(tmp_path, snapshot_every=1000):
    state = ServiceState(_CONFIG)
    journal = Journal(tmp_path, snapshot_every=snapshot_every)
    journal.open()
    state.admit("x")
    journal.record_admit(state.seq, "x")
    return state, journal


def test_wal_only_recovery_is_byte_identical(tmp_path):
    state, journal = _fresh(tmp_path)
    _drive(state, journal, "x", 40)
    journal.close()
    # No snapshot exists yet, so the caller's config seeds the state —
    # the same config the service passes on every start().
    report = Journal.recover(tmp_path, _CONFIG)
    assert report.snapshot_seq == 0 and report.replayed == 41
    assert report.state.state_digest() == state.state_digest()


def test_snapshot_plus_wal_recovery(tmp_path):
    state, journal = _fresh(tmp_path, snapshot_every=10)
    _drive(state, journal, "x", 37)
    journal.close()
    assert journal.snapshots >= 3
    report = Journal.recover(tmp_path)
    assert report.snapshot_seq > 0
    assert 0 < report.replayed < 38
    assert report.state.state_digest() == state.state_digest()


def test_torn_tail_quarantined_and_recovered(tmp_path):
    state, journal = _fresh(tmp_path)
    _drive(state, journal, "x", 20)
    journal.close()
    Journal(tmp_path).tear()
    report = Journal.recover(tmp_path, _CONFIG)
    assert report.quarantined == 1
    assert report.state.state_digest() == state.state_digest()
    corrupt = tmp_path / (JOURNAL_NAME + ".corrupt")
    assert corrupt.exists() and b"torn-by" in corrupt.read_bytes()
    # The journal was rewritten without the tail: recovering again finds
    # nothing new to quarantine and the digest is stable.
    again = Journal.recover(tmp_path, _CONFIG)
    assert again.quarantined == 0
    assert again.state.state_digest() == state.state_digest()


def test_snapshot_truncate_crash_window_is_idempotent(tmp_path):
    """The process dies after writing a snapshot but before truncating
    the journal: stale records must replay as no-ops, not double-apply."""
    state, journal = _fresh(tmp_path)
    _drive(state, journal, "x", 15)
    # Write a snapshot WITHOUT the accompanying truncation.
    snapshot_path = tmp_path / SNAPSHOT_NAME
    snapshot_path.write_text(json.dumps(state.snapshot(), sort_keys=True))
    _drive(state, journal, "x", 5)
    journal.close()
    report = Journal.recover(tmp_path)
    assert report.skipped == 16          # admit + 15 pre-snapshot accesses
    assert report.replayed == 5
    assert report.state.state_digest() == state.state_digest()


def test_interior_corruption_refuses_recovery(tmp_path):
    state, journal = _fresh(tmp_path)
    _drive(state, journal, "x", 10)
    journal.close()
    journal_path = tmp_path / JOURNAL_NAME
    lines = journal_path.read_bytes().splitlines(keepends=True)
    lines[3] = b"{this is not json}\n"
    journal_path.write_bytes(b"".join(lines))
    with pytest.raises(JournalError, match="corrupt journal"):
        Journal.recover(tmp_path)


def test_unknown_op_refuses_recovery(tmp_path):
    state, journal = _fresh(tmp_path)
    journal.close()
    with (tmp_path / JOURNAL_NAME).open("a") as handle:
        handle.write('{"q": 2, "op": "frobnicate"}\n')
    with pytest.raises(JournalError, match="unknown op"):
        Journal.recover(tmp_path)


def test_access_to_unknown_session_refuses_recovery(tmp_path):
    journal = Journal(tmp_path)
    journal.open()
    journal.record_access(1, "ghost", 0, 16, 4096, 0)
    journal.close()
    with pytest.raises(JournalError, match="unknown session"):
        Journal.recover(tmp_path)


def test_sequence_divergence_refuses_recovery(tmp_path):
    state, journal = _fresh(tmp_path)
    _drive(state, journal, "x", 3)
    journal.close()
    with (tmp_path / JOURNAL_NAME).open("a") as handle:
        # claims a seq two ahead of where replay will actually land
        handle.write('{"q": %d, "op": "access", "c": "x", "w": 0, '
                     '"p": 16, "a": 4096, "app": 0}\n' % (state.seq + 2))
    with pytest.raises(JournalError, match="divergence"):
        Journal.recover(tmp_path)


def test_corrupt_snapshot_refuses_recovery(tmp_path):
    state, journal = _fresh(tmp_path, snapshot_every=2)
    _drive(state, journal, "x", 5)
    journal.close()
    (tmp_path / SNAPSHOT_NAME).write_text('{"v": 1, "seq": "nope"}')
    with pytest.raises(JournalError, match="corrupt snapshot"):
        Journal.recover(tmp_path)


def test_empty_directory_recovers_fresh_state(tmp_path):
    report = Journal.recover(tmp_path, ServeConfig(shards=3))
    assert report.state.seq == 0
    assert report.state.config.shards == 3
    assert report.replayed == report.quarantined == 0


def test_journal_requires_open_for_append(tmp_path):
    with pytest.raises(JournalError, match="not open"):
        Journal(tmp_path).record_admit(1, "x")


def test_snapshot_every_validated(tmp_path):
    with pytest.raises(ValueError):
        Journal(tmp_path, snapshot_every=0)
