"""Load generator: event extraction, the silent-drop accounting, and a
concurrency soak (slow tier for the thousand-client certificate)."""

import asyncio

import pytest

from repro.serve import PrefetchServer, ServeConfig, ServeSettings
from repro.serve.loadgen import (
    LoadReport,
    _run,
    kernel_events,
    suite_events,
)
from repro.workloads import build_kernel


def test_kernel_events_interleave_warps():
    kernel = build_kernel("lps", scale=0.05, seed=1)
    events = kernel_events(kernel)
    assert events, "no memory accesses extracted"
    warps_in_order = [warp for warp, _, _ in events]
    # Round-robin interleave: the first len(set) events are all distinct
    # warps, i.e. not warp-major order.
    distinct = len(set(warps_in_order))
    if distinct > 1:
        assert len(set(warps_in_order[:distinct])) > 1


def test_suite_events_one_list_per_app():
    per_app = suite_events(("lps", "hotspot"), scale=0.05, seed=1)
    assert len(per_app) == 2
    assert all(events for events in per_app)


def test_report_summary_mentions_silence():
    report = LoadReport(clients=2, sent=10, acked=9, silent=1)
    assert "1 SILENT" in report.summary()
    assert report.nack_total() == 0


def _soak(tmp_path, clients, events):
    async def scenario():
        settings = ServeSettings(
            data_dir=str(tmp_path / "data"),
            config=ServeConfig(max_sessions=clients + 8),
        )
        server = PrefetchServer(settings)
        await server.start()
        report = await _run("127.0.0.1", server.port, clients, events,
                            ("lps", "hotspot"), 0.05, 1)
        await server.stop()
        return report

    return asyncio.run(scenario())


def test_loadgen_small_run_zero_silent(tmp_path):
    report = _soak(tmp_path, clients=20, events=15)
    assert report.clients == 20
    assert report.connect_failures == 0 and report.aborted == 0
    assert report.sent == report.acked + report.nack_total()
    assert report.silent == 0
    assert report.peak_concurrent > 1


@pytest.mark.slow
def test_loadgen_thousand_clients_zero_silent(tmp_path):
    """The acceptance criterion: >= 1000 concurrent replay clients, and
    every shed or refused request received an explicit NACK — zero
    silent drops."""
    report = _soak(tmp_path, clients=1000, events=20)
    assert report.clients == 1000
    assert report.connect_failures == 0 and report.aborted == 0
    assert report.sent == report.acked + report.nack_total()
    assert report.silent == 0
    assert report.peak_concurrent >= 500
