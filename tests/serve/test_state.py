"""The deterministic core: replay determinism, breakers, eviction, and
the read-only-ness of every query path (what recovery certification
rests on)."""

import pytest

from repro.serve.state import (
    ServeConfig,
    ServiceState,
    ShardBreaker,
    StrideFallback,
)


def _stream(state, client, n, pc=16, stride=64, warp=0, base=4096):
    results = []
    for i in range(n):
        results.append(state.apply(client, warp, pc, base + stride * i))
    return results


def _train(state, client, rounds=20):
    """A stream that actually trains Snake chains: several warps agreeing
    on the same two-PC transition (training requires a warp consensus,
    not one warp repeating itself)."""
    for i in range(rounds):
        for pc, base in ((16, 4096), (24, 1 << 20)):
            state.apply(client, i % 4, pc, base + 64 * i)


# ---------------------------------------------------------------------------
# Determinism and serialization


def test_same_inputs_same_digest():
    a, b = ServiceState(), ServiceState()
    for state in (a, b):
        state.admit("x")
        state.admit("y")
        _stream(state, "x", 40)
        _stream(state, "y", 25, pc=24, stride=128)
    assert a.state_digest() == b.state_digest()


def test_snapshot_restore_round_trip():
    state = ServiceState(ServeConfig(shards=2))
    state.admit("x")
    _stream(state, "x", 30)
    restored = ServiceState.restore(state.snapshot())
    assert restored.state_digest() == state.state_digest()
    # Both continue identically after restore.
    _stream(state, "x", 10)
    _stream(restored, "x", 10)
    assert restored.state_digest() == state.state_digest()


def test_restore_refuses_unknown_version():
    snapshot = ServiceState().snapshot()
    snapshot["v"] = 999
    with pytest.raises(ValueError, match="version"):
        ServiceState.restore(snapshot)


def test_predict_does_not_move_the_digest():
    state = ServiceState()
    state.admit("x")
    _train(state, "x")
    before = state.state_digest()
    for i in range(20):
        answer = state.predict("x", 0, 16, 4096 + 64 * i)
        assert answer is not None
    state.stats()
    state.audit()
    state.snapshot()
    assert state.state_digest() == before


def test_predict_after_training_produces_addresses():
    state = ServiceState()
    state.admit("x")
    _train(state, "x")
    predictions, degraded = state.predict("x", 0, 16, 4096 + 64 * 20)
    assert not degraded
    assert predictions


def test_admit_existing_is_a_pure_read():
    state = ServiceState()
    state.admit("x")
    _stream(state, "x", 5)
    before = state.state_digest()
    result = state.admit("x")
    assert result.ok and not result.created
    assert state.state_digest() == before


def test_apply_unknown_session_returns_none():
    assert ServiceState().apply("ghost", 0, 16, 4096) is None
    assert ServiceState().predict("ghost", 0, 16, 4096) is None


# ---------------------------------------------------------------------------
# Admission control and session eviction


def test_full_table_of_active_clients_denies():
    config = ServeConfig(max_sessions=3, min_idle_evict=1000)
    state = ServiceState(config)
    for name in ("a", "b", "c"):
        assert state.admit(name).ok
        _stream(state, name, 2)
    result = state.admit("d")
    assert not result.ok and result.reason == "busy"
    assert "d" not in state.sessions


def test_idle_least_trained_session_is_evicted():
    config = ServeConfig(max_sessions=3, min_idle_evict=10)
    state = ServiceState(config)
    state.admit("trained")
    _train(state, "trained", rounds=10)    # real trained chain links
    state.admit("idle")
    _stream(state, "idle", 1, pc=8)        # zero trained links
    state.admit("recent")
    _stream(state, "recent", 30, pc=24)    # pushes the others idle
    assert state.sessions["trained"].trained_links() > 0
    result = state.admit("newcomer")
    assert result.ok and result.created
    assert result.evicted == "idle"        # least trained of the LRU group
    assert "newcomer" in state.sessions and "idle" not in state.sessions
    assert state.counters["evicted"] == 1


def test_evicted_sessions_apply_returns_none():
    config = ServeConfig(max_sessions=2, min_idle_evict=1)
    state = ServiceState(config)
    state.admit("a")
    _stream(state, "a", 2)
    state.admit("b")
    _stream(state, "b", 2)
    state.admit("c")
    evicted = [n for n in ("a", "b") if n not in state.sessions]
    assert len(evicted) == 1
    assert state.apply(evicted[0], 0, 16, 4096) is None


# ---------------------------------------------------------------------------
# Faults, breakers, degraded mode


class _Boom(Exception):
    pass


def _wound_shard(state, client, shard_index):
    """Replace one shard's learner with an object that faults on observe."""

    class _Wounded:
        def observe(self, event):
            raise _Boom("synthetic shard fault")

        def tables(self):
            return []

    state.sessions[client].shards[shard_index] = _Wounded()


def test_shard_fault_opens_breaker_and_degrades():
    config = ServeConfig(shards=2, breaker_threshold=1, breaker_cooldown=5)
    state = ServiceState(config)
    state.admit("x")
    _stream(state, "x", 10)                 # trains fallback at pc=16
    _wound_shard(state, "x", 16 % config.shards)
    result = state.apply("x", 0, 16, 4096 + 64 * 10)
    assert result.fault and result.breaker_opened and result.degraded
    # The fallback still answers the strided stream.
    assert result.predictions
    assert state.counters["faults"] == 1
    # The wounded learner was replaced with a fresh one.
    session = state.sessions["x"]
    assert not isinstance(session.shards[16 % config.shards], _Boom.__class__)
    # While open, answers keep coming from the fallback...
    result = state.apply("x", 0, 16, 4096 + 64 * 11)
    assert result.degraded and not result.fault
    # ...and predict() reports degraded too, without touching state.
    predictions, degraded = state.predict("x", 0, 16, 4096 + 64 * 12)
    assert degraded


def test_breaker_closes_after_cooldown_trial():
    config = ServeConfig(shards=1, breaker_threshold=1, breaker_cooldown=3)
    state = ServiceState(config)
    state.admit("x")
    _stream(state, "x", 5)
    _wound_shard(state, "x", 0)
    state.apply("x", 0, 16, 1 << 20)        # fault -> breaker opens
    assert state.sessions["x"].breakers[0].state == "open"
    opened = False
    for i in range(6):
        result = state.apply("x", 0, 16, (1 << 20) + 64 * (i + 1))
        if result.breaker_closed:
            opened = True
            break
    assert opened, "breaker never closed after the cooldown trial"
    assert state.sessions["x"].breakers[0].state == "closed"


def test_breaker_replays_identically():
    """Faults are deterministic state transitions: replaying the same
    records (with the same wounded shard) reaches the same digest."""
    def build():
        config = ServeConfig(shards=1, breaker_threshold=1,
                             breaker_cooldown=4)
        state = ServiceState(config)
        state.admit("x")
        _stream(state, "x", 8)
        _wound_shard(state, "x", 0)
        state.apply("x", 0, 16, 1 << 21)    # fault; fresh learner installed
        _stream(state, "x", 12, base=1 << 22)
        return state.state_digest()

    assert build() == build()


def test_half_open_failure_reopens():
    breaker = ShardBreaker()
    assert breaker.on_fault(seq=10, threshold=1)      # opens
    assert not breaker.answer_from_learner(11, cooldown=100)
    assert breaker.answer_from_learner(200, cooldown=100)  # half-open trial
    assert breaker.state == "half-open"
    assert breaker.on_fault(seq=201, threshold=99)    # trial failed: reopen
    assert breaker.state == "open" and breaker.opens == 2


# ---------------------------------------------------------------------------
# The stride fallback


def test_fallback_predicts_confirmed_strides_purely():
    fallback = StrideFallback(capacity=8, degree=2)
    for i in range(4):
        fallback.update(0, 16, 1000 + 8 * i)
    snapshot = fallback.snapshot()
    assert fallback.predict(0, 16, 1032) == [1040, 1048]
    assert fallback.predict(1, 16, 1032) == []   # unknown (warp, pc)
    assert fallback.snapshot() == snapshot       # predict is pure


def test_fallback_lru_bound():
    fallback = StrideFallback(capacity=2, degree=1)
    fallback.update(0, 1, 10)
    fallback.update(0, 2, 20)
    fallback.update(0, 3, 30)                    # evicts (0, 1)
    assert len(fallback.snapshot()) == 2
    restored = StrideFallback.restore(2, 1, fallback.snapshot())
    assert restored.snapshot() == fallback.snapshot()


# ---------------------------------------------------------------------------
# Config validation


@pytest.mark.parametrize("kwargs", [
    {"shards": 0},
    {"max_sessions": 0},
    {"breaker_threshold": 0},
    {"min_idle_evict": -1},
    {"fallback_degree": 0},
])
def test_config_rejects_nonsense(kwargs):
    with pytest.raises(ValueError):
        ServeConfig(**kwargs)


# ---------------------------------------------------------------------------
# Batched drain lane (ServiceState.apply_batch)


def _burst_records(seed, count, clients):
    """Bursty per-client traffic, the shape a worker queue sweep drains."""
    import random

    rng = random.Random(seed)
    pcs = list(range(0x100, 0x100 + 8))
    cursors = {}
    records = []
    while len(records) < count:
        client = rng.choice(clients + ["ghost"])
        warp = rng.randrange(4)
        for k in range(rng.randrange(1, 24)):
            pc = pcs[(warp + k) % len(pcs)]
            key = (client, warp, pc)
            addr = cursors.get(key, 0x8000 + warp * 0x1000)
            cursors[key] = addr + 64
            records.append((client, warp, pc, addr, 0))
    del records[count:]
    return records


@pytest.mark.parametrize("seed", [1, 7, 1234])
def test_apply_batch_matches_sequential_apply(seed):
    """Digest and per-record results are identical no matter how the
    record stream is chunked — the property journal replay rests on."""
    import random

    config = ServeConfig(shards=2, audit_every=16, max_sessions=4,
                         min_idle_evict=4)
    a, b = ServiceState(config), ServiceState(config)
    clients = ["c%d" % i for i in range(5)]
    for client in clients:
        a.admit(client)
        b.admit(client)
    records = _burst_records(seed, 600, clients)

    sequential = [a.apply(*record) for record in records]
    rng = random.Random(seed)
    batched = []
    i = 0
    while i < len(records):
        k = rng.randrange(1, 48)
        batched.extend(b.apply_batch(records[i:i + k]))
        i += k

    assert a.state_digest() == b.state_digest()
    assert a.counters == b.counters
    for x, y in zip(sequential, batched):
        if x is None or y is None:
            assert x is y
            continue
        assert (x.predictions, x.degraded, x.shard, x.fault,
                x.breaker_opened, x.breaker_closed) == \
               (y.predictions, y.degraded, y.shard, y.fault,
                y.breaker_opened, y.breaker_closed)


def test_apply_batch_routes_faulting_learner_through_scalar_path():
    """A planted non-Snake learner (the breaker tests' idiom) must fault
    and degrade exactly as under sequential apply — the batch lane only
    accepts runs it can prove equivalent."""
    config = ServeConfig(shards=2, breaker_threshold=1, breaker_cooldown=50)
    a, b = ServiceState(config), ServiceState(config)
    for state in (a, b):
        state.admit("x")
        state.sessions["x"].shards[0] = _Boom()
    records = [("x", 0, pc, 0x1000 + 64 * i, 0)
               for i, pc in enumerate([2, 4, 6, 2, 4, 6, 3, 5, 3, 5] * 4)]
    sequential = [a.apply(*record) for record in records]
    batched = b.apply_batch(records)
    assert a.state_digest() == b.state_digest()
    assert [r.degraded for r in sequential] == [r.degraded for r in batched]
    assert [r.fault for r in sequential] == [r.fault for r in batched]
    assert b.counters["faults"] >= 1            # the plant did fault
    assert b.sessions["x"].breakers[0].state == "open"


def test_snapshot_roundtrip_after_batched_traffic():
    """The serve snapshot must round-trip the numpy-backed learner
    tables byte-identically after batched traffic (the chaos recovery
    certificate's foundation)."""
    state = ServiceState(ServeConfig(shards=2))
    state.admit("x")
    state.admit("y")
    records = _burst_records(42, 400, ["x", "y"])
    i = 0
    while i < len(records):
        state.apply_batch(records[i:i + 32])
        i += 32
    image = state.snapshot()
    clone = ServiceState.restore(image)
    assert clone.snapshot() == image
    assert clone.state_digest() == state.state_digest()
    # and the clone continues identically, batched or not
    more = _burst_records(43, 120, ["x", "y"])
    state.apply_batch(more)
    for record in more:
        clone.apply(*record)
    assert clone.state_digest() == state.state_digest()
