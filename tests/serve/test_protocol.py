"""Unit tests for the sans-I/O serve wire codec and request validation."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.protocol import (
    HEADER,
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    NACK_REASONS,
    FrameDecoder,
    FrameError,
    ack,
    encode_frame,
    nack,
    validate_request,
)


def test_round_trip_single_frame():
    message = {"op": "ping", "seq": 7}
    frames = FrameDecoder().feed(encode_frame(message))
    assert frames == [message]


def test_encode_is_canonical():
    a = encode_frame({"b": 1, "a": 2})
    b = encode_frame({"a": 2, "b": 1})
    assert a == b


@settings(max_examples=50, deadline=None)
@given(
    messages=st.lists(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.integers(min_value=0, max_value=2**40),
            max_size=4,
        ),
        min_size=1,
        max_size=8,
    ),
    chunk=st.integers(min_value=1, max_value=17),
)
def test_decoder_reassembles_any_chunking(messages, chunk):
    stream = b"".join(encode_frame(m) for m in messages)
    decoder = FrameDecoder()
    out = []
    for start in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[start:start + chunk]))
    assert out == messages
    assert decoder.buffered == 0


def test_zero_length_frame_rejected():
    with pytest.raises(FrameError, match="zero-length"):
        FrameDecoder().feed(HEADER.pack(0))


def test_oversized_declared_length_rejected_before_payload():
    decoder = FrameDecoder(max_frame=64)
    # Only the header is fed: the ceiling must trip without any payload.
    with pytest.raises(FrameError, match="ceiling"):
        decoder.feed(HEADER.pack(65))


def test_undecodable_payload_rejected_with_offset():
    decoder = FrameDecoder()
    good = encode_frame({"op": "ping"})
    decoder.feed(good)
    bad = HEADER.pack(4) + b"\xff\xfe\x00x"
    with pytest.raises(FrameError) as err:
        decoder.feed(bad)
    assert err.value.offset == len(good)
    assert err.value.frame_index == 1


def test_non_object_payload_rejected():
    payload = json.dumps([1, 2, 3]).encode()
    with pytest.raises(FrameError, match="not an object"):
        FrameDecoder().feed(HEADER.pack(len(payload)) + payload)


def test_encode_refuses_oversized_payload():
    with pytest.raises(FrameError, match="ceiling"):
        encode_frame({"x": "y" * MAX_FRAME_BYTES})


def test_validate_hello():
    out = validate_request({"op": "hello", "client": "abc", "seq": 3})
    assert out == {"op": "hello", "client": "abc", "seq": 3}


def test_validate_strips_unknown_fields():
    out = validate_request({
        "op": "access", "warp": 1, "pc": 2, "addr": 3,
        "__proto__": "evil", "extra": 1,
    })
    assert set(out) == {"op", "warp", "pc", "addr", "app"}


@pytest.mark.parametrize("poison", [
    {"op": "nope"},
    {},
    {"op": "hello"},
    {"op": "hello", "client": ""},
    {"op": "hello", "client": "x" * 129},
    {"op": "hello", "client": 7},
    {"op": "access", "warp": 0, "pc": 0},                      # missing addr
    {"op": "access", "warp": True, "pc": 0, "addr": 0},        # bool != int
    {"op": "access", "warp": 0.5, "pc": 0, "addr": 0},         # float
    {"op": "access", "warp": -1, "pc": 0, "addr": 0},          # negative
    {"op": "access", "warp": 1 << 64, "pc": 0, "addr": 0},     # overflow
    {"op": "access", "warp": "0", "pc": 0, "addr": 0},         # string
    {"op": "stats", "digest": 1},                              # non-bool flag
    {"op": "ping", "seq": -3},
])
def test_validate_poison_rejected(poison):
    with pytest.raises(FrameError):
        validate_request(poison)


def test_nack_carries_reason_and_retry():
    response = nack("overload", seq=9, detail="queue full", retry_after_s=0.5)
    assert response == {
        "ok": False, "error": "overload", "seq": 9,
        "detail": "queue full", "retry_after_s": 0.5,
    }


def test_nack_refuses_unknown_reason():
    with pytest.raises(ValueError, match="unknown NACK reason"):
        nack("because")


def test_every_nack_reason_constructs():
    for reason in NACK_REASONS:
        assert nack(reason)["error"] == reason


def test_ack_echoes_seq_and_fields():
    assert ack(4, predictions=[1]) == {
        "ok": True, "seq": 4, "predictions": [1],
    }
    assert ack() == {"ok": True}


def test_header_size_is_four_bytes():
    assert HEADER_BYTES == 4
