"""The serve fault plan (fast) and the full chaos certificates (slow)."""

import pytest

from repro.serve.chaos import (
    SERVE_DEFAULT_RATES,
    SERVE_SITES,
    ServeFaultPlan,
    run_serve_chaos,
    serve_catalog,
)


def test_plan_is_deterministic_and_order_independent():
    a = ServeFaultPlan.make({"client.slow_loris": 0.5,
                             "client.malformed_frame": 0.5}, seed=7)
    b = ServeFaultPlan.make({"client.malformed_frame": 0.5,
                             "client.slow_loris": 0.5}, seed=7)
    assert a == b
    assignments = [a.client_site(i) for i in range(200)]
    assert assignments == [b.client_site(i) for i in range(200)]
    # With 50% rates over two sites, both fire somewhere in 200 draws.
    assert "client.slow_loris" in assignments
    assert "client.malformed_frame" in assignments
    assert assignments.count(None) > 0


def test_different_seeds_differ():
    plan7 = ServeFaultPlan.storm(seed=7)
    plan8 = ServeFaultPlan.storm(seed=8)
    assert [plan7.client_site(i) for i in range(100)] != [
        plan8.client_site(i) for i in range(100)
    ]


def test_single_and_storm_labels():
    assert ServeFaultPlan.storm().label() == "serve-storm"
    assert ServeFaultPlan.single("client.slow_loris").label() == "slow_loris"
    assert ServeFaultPlan.make({}).label() == "none"


def test_plan_rejects_unknown_site_and_bad_rate():
    with pytest.raises(ValueError, match="unknown serve fault site"):
        ServeFaultPlan.make({"client.teleport": 0.5})
    with pytest.raises(ValueError, match="in \\[0, 1\\]"):
        ServeFaultPlan.make({"client.slow_loris": 1.5})


def test_zero_rate_plan_never_fires():
    plan = ServeFaultPlan.make({s: 0.0 for s in SERVE_SITES})
    assert all(plan.client_site(i) is None for i in range(100))
    assert not plan.journal_torn()


def test_catalog_covers_every_site():
    assert set(serve_catalog()) == set(SERVE_SITES)
    assert set(SERVE_DEFAULT_RATES) == set(SERVE_SITES)


@pytest.mark.slow
def test_graceful_chaos_certificate_is_green():
    report = run_serve_chaos(
        ServeFaultPlan.storm(seed=0),
        clients=12, events_per_client=30, apps=("lps",), scale=0.05,
        kill=False,
    )
    assert report.ok, "\n" + report.render()
    assert report.torn and report.quarantined == 1
    assert report.digest_served == report.digest_recovered


@pytest.mark.slow
def test_kill9_chaos_certificate_is_green():
    """The acceptance criterion: SIGKILL mid-stream, torn journal,
    restart — recovered learner state is byte-identical (snapshot + WAL
    replay), the structural audit is green, behaved clients saw zero
    silent drops, and a client resumes its session after restart."""
    report = run_serve_chaos(
        ServeFaultPlan.storm(seed=0),
        clients=24, events_per_client=60, apps=("lps", "hotspot"),
        scale=0.05, kill=True,
    )
    assert report.ok, "\n" + report.render()
    assert report.killed
    assert report.digest_served == report.digest_recovered != ""
    assert report.load is not None and report.load.silent == 0


@pytest.mark.slow
def test_chaos_seed_sweep():
    for seed in range(3):
        report = run_serve_chaos(
            ServeFaultPlan.storm(seed=seed),
            clients=16, events_per_client=40, apps=("lps",), scale=0.05,
            kill=True,
        )
        assert report.ok, "seed %d:\n%s" % (seed, report.render())
