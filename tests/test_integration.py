"""End-to-end shape tests: the orderings the paper's evaluation reports must
hold in the reproduction (absolute numbers may differ — see EXPERIMENTS.md).

Set ``SNAKE_SANITIZE=1`` to run the whole module with the conservation
sanitizer armed (CI does): same assertions, plus every simulation is
audited for broken accounting at cycle cadence.
"""

import os

import pytest

from repro.gpusim import GPUConfig, simulate
from repro.workloads import build_kernel

SCALE = 0.5
SEED = 3
CONFIG = (
    GPUConfig.scaled().with_(sanitize=True)
    if os.environ.get("SNAKE_SANITIZE")
    else None
)


@pytest.fixture(scope="module")
def lps():
    return build_kernel("lps", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def results(lps):
    mechs = ["none", "mta", "cta", "snake", "s-snake", "ideal", "tree"]
    return {m: simulate(lps, prefetcher=m, config=CONFIG) for m in mechs}


class TestCoverageOrdering:
    def test_snake_beats_mta(self, results):
        """Fig 16: Snake's chains find more than MTA's fixed strides."""
        assert results["snake"].coverage > results["mta"].coverage

    def test_snake_beats_cta(self, results):
        assert results["snake"].coverage > results["cta"].coverage

    def test_ideal_is_upper_bound(self, results):
        for mech in ("snake", "mta", "cta"):
            assert results["ideal"].coverage >= results[mech].coverage - 0.05

    def test_snake_coverage_high_on_stencil(self, results):
        """Snake reaches ~80 % coverage on chain-rich apps (Fig 16)."""
        assert results["snake"].coverage > 0.6


class TestPerformance:
    def test_snake_improves_ipc(self, results):
        assert results["snake"].ipc > results["none"].ipc

    def test_snake_improves_hit_rate(self, results):
        """Fig 25: Snake raises the L1 hit rate substantially."""
        assert results["snake"].l1_hit_rate > results["none"].l1_hit_rate + 0.1

    def test_tree_pollutes(self, results):
        """Fig 18: the aggressive spatial prefetcher trails Snake."""
        assert results["snake"].ipc > results["tree"].ipc


class TestAccuracy:
    def test_accuracy_never_exceeds_coverage(self, results):
        for stats in results.values():
            assert stats.accuracy <= stats.coverage + 1e-9

    def test_s_snake_close_to_snake_on_chain_app(self, results):
        """s-Snake keeps most of the coverage on a chain-dominated app."""
        assert results["s-snake"].coverage > 0.5 * results["snake"].coverage


class TestEnergy:
    def test_snake_reduces_energy_on_latency_bound_app(self):
        """Fig 19: the runtime saved on latency-bound apps outweighs the
        prefetcher's own energy (LIB is the paper's biggest winner)."""
        from repro.gpusim.energy import energy_of

        config = GPUConfig.scaled()
        kernel = build_kernel("lib", scale=SCALE, seed=SEED)
        base = energy_of(simulate(kernel, prefetcher="none"),
                         config.num_sms).total_j
        snake = energy_of(simulate(kernel, prefetcher="snake"),
                          config.num_sms, prefetcher_present=True).total_j
        assert snake < base

    def test_prefetcher_energy_overhead_is_small(self, results):
        """§5.5: the tables' own energy is a negligible fraction."""
        from repro.gpusim.energy import energy_of

        config = GPUConfig.scaled()
        breakdown = energy_of(results["snake"], config.num_sms,
                              prefetcher_present=True)
        assert breakdown.prefetcher_j < 0.02 * breakdown.total_j


class TestIrregularApp:
    def test_everything_struggles_on_mum(self):
        """Fig 16: pointer chasing defeats every stride mechanism."""
        kernel = build_kernel("mum", scale=SCALE, seed=SEED)
        for mech in ("mta", "snake"):
            assert simulate(kernel, prefetcher=mech).coverage < 0.5


class TestDecouplingStudy:
    def test_isolated_snake_hit_rate_at_least_baseline(self, lps):
        baseline = simulate(lps, prefetcher="none").l1_hit_rate
        isolated = simulate(lps, prefetcher="isolated-snake").l1_hit_rate
        assert isolated > baseline


class TestConservation:
    def test_every_mechanism_passes_the_stats_audit(self, results):
        """Every end-to-end run's merged stats satisfy the conservation
        identities (SimStats.verify raises listing any broken ones)."""
        for mech, stats in results.items():
            assert stats.verify() is stats, mech
