"""Warp schedulers."""

from dataclasses import dataclass

import pytest

from repro.gpusim.scheduler import GTOScheduler, RRScheduler, make_scheduler


@dataclass
class FakeWarp:
    warp_id: int


def warps(*ids):
    return [FakeWarp(i) for i in ids]


class TestGTO:
    def test_picks_oldest_first(self):
        sched = GTOScheduler()
        assert sched.pick(warps(3, 1, 2)).warp_id == 1

    def test_greedy_sticks_to_last(self):
        sched = GTOScheduler()
        picked = sched.pick(warps(0, 1, 2))
        sched.note_issued(picked)
        # even though 0 is oldest, the scheduler stays greedy on `picked`
        again = sched.pick(warps(2, 1, 0))
        assert again.warp_id == picked.warp_id

    def test_falls_back_to_oldest_when_last_stalls(self):
        sched = GTOScheduler()
        sched.note_issued(FakeWarp(5))
        assert sched.pick(warps(7, 3)).warp_id == 3

    def test_raises_on_empty(self):
        with pytest.raises(ValueError):
            GTOScheduler().pick([])


class TestRR:
    def test_rotates(self):
        sched = RRScheduler()
        ready = warps(0, 1, 2)
        order = []
        for _ in range(6):
            w = sched.pick(ready)
            sched.note_issued(w)
            order.append(w.warp_id)
        assert order == [0, 1, 2, 0, 1, 2]

    def test_wraps_around(self):
        sched = RRScheduler()
        sched.note_issued(FakeWarp(2))
        assert sched.pick(warps(0, 1)).warp_id == 0

    def test_raises_on_empty(self):
        with pytest.raises(ValueError):
            RRScheduler().pick([])


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_scheduler("gto"), GTOScheduler)
        assert isinstance(make_scheduler("rr"), RRScheduler)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo")
