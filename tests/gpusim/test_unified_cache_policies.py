"""Focused tests for the decoupled storage policy's finer rules."""

from repro.gpusim.config import CacheConfig, DRAMTimings, GPUConfig
from repro.gpusim.dram import DRAM
from repro.gpusim.interconnect import Interconnect
from repro.gpusim.l2 import L2Cache
from repro.gpusim.stats import SimStats
from repro.gpusim.unified_cache import StorageMode, UnifiedL1Cache


def make_l1(mode=StorageMode.DECOUPLED, assoc=4, size=512, grace=100):
    config = GPUConfig.scaled().with_(
        l1=CacheConfig(size_bytes=size, assoc=assoc, line_bytes=128, latency=28),
        mshr_entries=64,
        miss_queue_depth=64,
        decouple_grace=grace,
    )
    dram = DRAM(DRAMTimings(), 2, 4, 2048, 0.5, 128)
    l2 = L2Cache(config.l2, banks=4, dram=dram)
    stats = SimStats()
    l1 = UnifiedL1Cache(
        config,
        Interconnect(config.icnt_bytes_per_cycle, config.icnt_latency),
        Interconnect(config.icnt_bytes_per_cycle, config.icnt_latency),
        l2, stats, mode=mode,
    )
    return l1, stats


def same_set_lines(l1, count, start=0):
    target = l1.store.set_index(start)
    found, addr = [], start
    while len(found) < count:
        if l1.store.set_index(addr) == target:
            found.append(addr)
        addr += 128
    return found


class TestTransferRatio:
    def test_bootstrap_is_optimistic(self):
        l1, _ = make_l1()
        assert l1._transfer_ratio() == 1.0

    def test_ratio_tracks_transfers(self):
        l1, _ = make_l1()
        l1._prefetch_inserted = 100
        l1._prefetch_transferred = 90
        assert l1._transfer_ratio() == 0.9

    def test_decay_halves_counters(self):
        l1, _ = make_l1()
        l1._prefetch_inserted = 256
        l1._prefetch_transferred = 128
        l1._decay_transfer_counters()
        assert l1._prefetch_inserted == 128
        assert l1._prefetch_transferred == 64


class TestGraceWindow:
    def test_young_prefetch_protected_from_demand_fill(self):
        l1, stats = make_l1(grace=1_000_000)
        l1.prefetcher_trained = True
        lines = same_set_lines(l1, 6)
        # one old demand line plus three young prefetched lines fill the set
        l1._install(lines[0], now=0, is_prefetch=False)
        for line in lines[1:4]:
            l1.prefetch(line, 10)
        l1.free_space_fraction(50_000)  # commit fills
        # force a low transfer ratio (normally the eviction trigger)
        l1._prefetch_inserted = 100
        l1._prefetch_transferred = 0
        # the demand fill must recycle the demand line, not the young
        # prefetched ones (grace window)
        l1._install(lines[4], now=60_000, is_prefetch=False)
        resident_prefetch = [
            l for l in l1.store.lines_in_set(l1.store.set_index(lines[0]))
            if l.is_prefetch
        ]
        assert len(resident_prefetch) == 3
        assert stats.prefetch.unused_evicted == 0

    def test_stale_prefetch_recycled(self):
        l1, stats = make_l1(grace=10)
        lines = same_set_lines(l1, 6)
        for line in lines[:4]:
            l1.prefetch(line, 0)
        l1.free_space_fraction(50_000)
        l1._prefetch_inserted = 100
        l1._prefetch_transferred = 0
        l1._install(lines[4], now=60_000, is_prefetch=False)
        assert stats.prefetch.unused_evicted >= 1


class TestEightyPercentRule:
    def test_behaving_prefetcher_evicts_demand_side(self):
        l1, _ = make_l1(grace=0)
        l1.prefetcher_trained = True
        lines = same_set_lines(l1, 6)
        now = 0
        # two demand lines, two prefetch lines fill the 4-way set
        for line in lines[:2]:
            l1._install(line, now, is_prefetch=False)
        for line in lines[2:4]:
            l1._install(line, now, is_prefetch=True)
        l1._prefetch_inserted = 100
        l1._prefetch_transferred = 95  # > 80%: prefetching behaves
        l1._install(lines[4], now=100, is_prefetch=True)
        set_lines = l1.store.lines_in_set(l1.store.set_index(lines[0]))
        assert sum(1 for l in set_lines if l.is_prefetch) == 3  # grew
        assert sum(1 for l in set_lines if not l.is_prefetch) == 1  # shrank

    def test_misbehaving_prefetcher_recycles_itself(self):
        l1, _ = make_l1(grace=0)
        l1.prefetcher_trained = True
        lines = same_set_lines(l1, 6)
        for line in lines[:2]:
            l1._install(line, 0, is_prefetch=False)
        for line in lines[2:4]:
            l1._install(line, 0, is_prefetch=True)
        l1._prefetch_inserted = 100
        l1._prefetch_transferred = 10  # misbehaving
        l1._install(lines[4], now=100_000, is_prefetch=True)
        set_lines = l1.store.lines_in_set(l1.store.set_index(lines[0]))
        assert sum(1 for l in set_lines if not l.is_prefetch) == 2  # intact


class TestBulkFree:
    def test_free_quarter_respects_rule(self):
        l1, _ = make_l1(assoc=8, size=1024, grace=0)
        lines = same_set_lines(l1, 8)
        for line in lines[:4]:
            l1._install(line, 0, is_prefetch=False)
        for line in lines[4:]:
            l1._install(line, 0, is_prefetch=True)
        l1._prefetch_inserted = 100
        l1._prefetch_transferred = 0
        set_idx = l1.store.set_index(lines[0])
        before = len(l1.store.lines_in_set(set_idx))
        l1._free_quarter(set_idx, now=10)
        after = l1.store.lines_in_set(set_idx)
        assert before - len(after) == 2  # 25% of 8 ways
        assert all(not l.is_prefetch for l in after) or any(
            l.is_prefetch for l in after
        )
        # misbehaving: evicted lines were prefetch-side
        assert sum(1 for l in after if l.is_prefetch) == 2
