"""Kernel-trace serialization."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace
from repro.gpusim.traceio import TraceFormatError, load_trace, save_trace
from repro.workloads import build_kernel


def instr_strategy():
    mem = st.builds(
        WarpInstr,
        pc=st.integers(0, 1 << 20),
        op=st.sampled_from([Op.LOAD, Op.STORE]),
        base_addr=st.integers(0, 1 << 30),
        thread_stride=st.integers(0, 512),
        size_bytes=st.integers(1, 64),
        divergent=st.booleans(),
    )
    alu = st.builds(
        WarpInstr, pc=st.integers(0, 1 << 20),
        op=st.sampled_from([Op.ALU, Op.SFU, Op.BARRIER]),
    )
    return st.one_of(mem, alu)


class TestRoundTrip:
    def test_benchmark_trace_roundtrips(self, tmp_path):
        kernel = build_kernel("lps", scale=0.25, seed=1)
        path = save_trace(kernel, tmp_path / "lps.trace")
        loaded = load_trace(path)
        assert loaded.name == kernel.name
        assert loaded.num_warps == kernel.num_warps
        assert [
            (i.pc, i.op, i.base_addr, i.thread_stride, i.size_bytes, i.divergent)
            for w in loaded.all_warps() for i in w.instrs
        ] == [
            (i.pc, i.op, i.base_addr, i.thread_stride, i.size_bytes, i.divergent)
            for w in kernel.all_warps() for i in w.instrs
        ]

    @settings(max_examples=25)
    @given(st.lists(instr_strategy(), min_size=0, max_size=30))
    def test_arbitrary_instrs_roundtrip(self, instrs):
        import tempfile
        from pathlib import Path

        kernel = KernelTrace(
            name="prop",
            ctas=[CTA(cta_id=0, warps=[WarpTrace(warp_id=0, instrs=instrs)])],
        )
        with tempfile.TemporaryDirectory() as tmp:
            loaded = load_trace(save_trace(kernel, Path(tmp) / "k.trace"))
        assert loaded.num_instrs == len(instrs)
        for orig, back in zip(instrs, loaded.all_warps()[0].instrs):
            assert back.pc == orig.pc and back.op is orig.op
            if orig.is_mem:
                assert back.base_addr == orig.base_addr
                assert back.divergent == orig.divergent


class TestValidation:
    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(json.dumps({"kernel": "x", "version": 99}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_warp_before_cta(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"kernel": "x", "version": 1}) + "\n"
            + json.dumps({"warp": 0, "instrs": []}) + "\n"
        )
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_unknown_record(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"kernel": "x", "version": 1}) + "\n"
            + json.dumps({"mystery": 1}) + "\n"
        )
        with pytest.raises(ValueError):
            load_trace(path)


class TestTraceFormatError:
    """Truncated / corrupt files must fail with the damage located."""

    def test_truncated_file_names_offset_and_record(self, tmp_path):
        kernel = build_kernel("lps", scale=0.1, seed=1)
        path = save_trace(kernel, tmp_path / "lps.trace")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 20])  # cut mid-record
        with pytest.raises(TraceFormatError) as exc:
            load_trace(path)
        assert "truncated" in str(exc.value)
        assert exc.value.record_index > 0
        assert 0 < exc.value.offset < len(raw)
        assert str(path) in str(exc.value)
        # The offset points at the start of the torn line.
        assert raw[: exc.value.offset].endswith(b"\n")

    def test_corrupt_instruction_record(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"kernel": "x", "version": 1}) + "\n"
            + json.dumps({"cta": 0}) + "\n"
            + json.dumps({"warp": 0, "instrs": [[1, 2, 3]]}) + "\n"
        )
        with pytest.raises(TraceFormatError) as exc:
            load_trace(path)
        assert "corrupt instruction" in str(exc.value)
        assert exc.value.record_index == 2

    def test_unknown_opcode(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"kernel": "x", "version": 1}) + "\n"
            + json.dumps({"cta": 0}) + "\n"
            + json.dumps({"warp": 0, "instrs": [[0, "bogus-op"]]}) + "\n"
        )
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(TraceFormatError) as exc:
            load_trace(path)
        assert exc.value.record_index == 0

    def test_missing_instruction_list(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"kernel": "x", "version": 1}) + "\n"
            + json.dumps({"cta": 0}) + "\n"
            + json.dumps({"warp": 0}) + "\n"
        )
        with pytest.raises(TraceFormatError) as exc:
            load_trace(path)
        assert exc.value.record_index == 2

    def test_is_a_value_error(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)


class TestSimulationEquivalence:
    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.gpusim import simulate

        kernel = build_kernel("hotspot", scale=0.25, seed=2)
        loaded = load_trace(save_trace(kernel, tmp_path / "h.trace"))
        a = simulate(kernel, prefetcher="snake")
        b = simulate(loaded, prefetcher="snake")
        assert (a.cycles, a.instructions, a.prefetch.issued) == (
            b.cycles, b.instructions, b.prefetch.issued
        )
