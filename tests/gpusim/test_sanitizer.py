"""The conservation sanitizer: clean runs stay silent, corrupted state is
caught with the specific broken invariant named, and a sanitize-off GPU
pays nothing."""

import pytest

from repro.gpusim import GPU, GPUConfig, InvariantViolationError, simulate
from repro.gpusim.sanitizer import SimSanitizer
from repro.workloads import build_kernel


def _kernel(app="lps", scale=0.2, seed=1):
    return build_kernel(app, scale=scale, seed=seed)


def _sanitized_config(**overrides):
    return GPUConfig.scaled().with_(sanitize=True, **overrides)


class TestCleanRuns:
    @pytest.mark.parametrize("mech", ["none", "snake", "isolated-snake", "mta"])
    def test_sanitized_run_completes(self, mech):
        stats = simulate(_kernel(), prefetcher=mech, config=_sanitized_config())
        assert stats.warps_finished > 0

    def test_sanitize_does_not_change_results(self):
        kernel = _kernel()
        plain = simulate(kernel, prefetcher="snake")
        audited = simulate(
            _kernel(), prefetcher="snake", config=_sanitized_config()
        )
        assert audited.instructions == plain.instructions
        assert audited.cycles == plain.cycles
        assert audited.l1_hits == plain.l1_hits

    def test_interval_is_respected(self):
        gpu = GPU(config=GPUConfig.scaled())
        gpu.run(_kernel())
        sanitizer = SimSanitizer(gpu, interval=500)
        sanitizer.maybe_check(0)
        assert sanitizer.checks == 1
        sanitizer.maybe_check(499)  # inside the cadence window
        assert sanitizer.checks == 1
        sanitizer.maybe_check(500)
        assert sanitizer.checks == 2

    def test_snapshot_carries_audit_trail(self):
        gpu = GPU(config=GPUConfig.scaled())
        gpu.run(_kernel())
        sanitizer = SimSanitizer(gpu, interval=1000)
        sanitizer.check(1234)
        snap = sanitizer.snapshot()
        assert snap["checks"] == 1
        assert snap["interval"] == 1000
        assert snap["last_clean"]["cycle"] == 1234
        assert len(snap["last_clean"]["sms"]) == len(gpu.sms)


class TestZeroCostOff:
    def test_sanitize_defaults_off(self):
        assert GPUConfig.scaled().sanitize is False

    def test_off_gpu_carries_no_hooks(self):
        gpu = GPU(config=GPUConfig.scaled())
        assert gpu.faults is None
        for sm in gpu.sms:
            assert sm._faults is None
            assert sm.l1._faults is None


class TestViolationDetection:
    """Each corruption is injected into a *finished* healthy GPU and must
    be caught by a fresh audit, with the right invariant named."""

    def _ran_gpu(self, prefetcher="snake"):
        from repro.prefetch import build_setup

        setup = build_setup(prefetcher, GPUConfig.scaled())
        gpu = GPU(
            config=setup.config,
            prefetcher_factory=setup.prefetcher_factory,
            throttle_factory=setup.throttle_factory,
            storage_mode=setup.storage_mode,
        )
        gpu.run(_kernel())
        return gpu

    def _expect(self, gpu, invariant):
        sanitizer = SimSanitizer(gpu)
        with pytest.raises(InvariantViolationError) as err:
            sanitizer.check(10_000)
        assert err.value.invariant == invariant
        assert err.value.cycle == 10_000
        assert err.value.state_dump["violations"]
        assert "sanitizer" in err.value.state_dump
        return err.value

    def test_clean_machine_passes(self):
        SimSanitizer(self._ran_gpu()).check(10_000)  # no raise

    def test_leaked_mshr_entry(self):
        gpu = self._ran_gpu()
        gpu.sms[0].l1._mshr.allocated += 3
        err = self._expect(gpu, "mshr_balance")
        assert "leaked" in str(err)

    def test_priority_horizon_ahead_of_combined(self):
        gpu = self._ran_gpu()
        port = gpu.sms[0].icnt_req
        port.priority_next_free = port.next_free + 1_000
        self._expect(gpu, "icnt_priority")

    def test_rewound_noc_horizon(self):
        gpu = self._ran_gpu()
        sanitizer = SimSanitizer(gpu)
        sanitizer.check(10_000)  # establish the baseline
        port = gpu.sms[0].icnt_req
        port.next_free -= 1
        port.priority_next_free = min(port.priority_next_free, port.next_free)
        with pytest.raises(InvariantViolationError) as err:
            sanitizer.check(12_000)
        assert err.value.invariant == "icnt_monotonic"

    def test_corrupt_tail_table_chain(self):
        gpu = self._ran_gpu("snake")
        corrupted = False
        for sm in gpu.sms:
            for _, _, tail in sm.prefetcher.tables():
                for entry in tail.entries():
                    entry.warp_vector = 1 << 80  # outside the 64-bit field
                    corrupted = True
                    break
        assert corrupted, "snake run left no tail entries to corrupt"
        self._expect(gpu, "snake_table")

    def test_stats_conservation_breach(self):
        gpu = self._ran_gpu()
        stats = gpu.sms[0].stats
        stats.prefetch.demand_timely = stats.prefetch.demand_covered + 10
        self._expect(gpu, "stats_conservation")

    def test_cross_layer_breach(self):
        gpu = self._ran_gpu()
        gpu.l2.hits += 7  # phantom L2 traffic no L1 sent
        self._expect(gpu, "l2_conservation")

    def test_dram_conservation_breach(self):
        gpu = self._ran_gpu()
        gpu.dram.reads += 2
        self._expect(gpu, "dram_conservation")


class TestEndToEndDetection:
    def test_violation_escapes_simulate(self):
        """A mid-run corruption surfaces as InvariantViolationError out of
        the public simulate() API when sanitize is on."""
        from repro.gpusim.unified_cache import UnifiedL1Cache

        original = UnifiedL1Cache.demand_load

        def leaky(self, line_addr, now, sector_mask=-1):
            self._mshr.allocated += 1  # phantom allocation
            return original(self, line_addr, now, sector_mask)

        UnifiedL1Cache.demand_load = leaky
        try:
            with pytest.raises(InvariantViolationError) as err:
                simulate(_kernel(), prefetcher="none",
                         config=_sanitized_config())
        finally:
            UnifiedL1Cache.demand_load = original
        assert err.value.invariant == "mshr_balance"
