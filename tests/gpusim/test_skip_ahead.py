"""Differential tests for the event-driven skip-ahead core.

The refactor's contract (docs/PERFORMANCE.md): the event core and the
``legacy_loop`` reference implementation are **cycle-identical** — not
statistically close, byte-equal on every counter, for every mechanism,
storage mode, topology, and even under chaos faults (the shared RNG
stream must be consulted in the same order at the same cycles).
"""

import pytest

from repro.gpusim import FaultInjector, FaultPlan, GPUConfig, simulate
from repro.workloads import build_kernel

SCALE = 0.15


def both_loops(app, mechanism, scale=SCALE, seed=1, config=None, **kwargs):
    """Run one cell on the event core and the legacy reference; returns
    the two SimStats dicts."""
    base = config or GPUConfig.scaled()
    results = []
    for legacy in (False, True):
        kernel = build_kernel(app, scale=scale, seed=seed)
        stats = simulate(
            kernel,
            prefetcher=mechanism,
            config=base.with_(legacy_loop=legacy),
            **kwargs,
        )
        results.append(stats.as_dict())
    return results


class TestCycleIdentical:
    @pytest.mark.parametrize("app,mechanism", [
        ("lps", "none"),
        ("lps", "snake"),
        ("hotspot", "snake"),
        ("hotspot", "intra"),
        ("backprop", "s-snake"),
        ("mum", "snake-dt"),
    ])
    def test_stats_identical_across_mechanisms(self, app, mechanism):
        event, legacy = both_loops(app, mechanism)
        assert event == legacy

    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_stats_identical_across_seeds(self, seed):
        event, legacy = both_loops("lps", "snake", seed=seed)
        assert event == legacy

    def test_stats_identical_on_wider_gpu(self):
        config = GPUConfig.scaled(num_sms=4)
        event, legacy = both_loops("hotspot", "snake", config=config)
        assert event == legacy

    def test_stats_identical_with_sectored_l1(self):
        config = GPUConfig.scaled().with_(l1_sector_bytes=32)
        event, legacy = both_loops("lps", "snake", config=config)
        assert event == legacy

    def test_stats_identical_with_sanitizer(self):
        """The sanitizer audits invariants mid-run; it must see the same
        state at the same audit points under both loops."""
        config = GPUConfig.scaled().with_(sanitize=True)
        event, legacy = both_loops("backprop", "snake", config=config)
        assert event == legacy


class TestFigureCSVs:
    def test_sweep_csv_identical(self, tmp_path):
        """The figure pipeline (in-process sweep -> coverage matrix ->
        CSV) must produce byte-identical files from either loop."""
        from repro.analysis import export
        from repro.analysis.experiments import figure16_from
        from repro.runner import grid_specs, run_jobs

        paths = []
        for legacy in (False, True):
            config = GPUConfig.scaled().with_(legacy_loop=legacy)
            specs = grid_specs(
                ["lps", "hotspot"], ["none", "snake"],
                config=config, scale=SCALE, seed=1,
            )
            result = run_jobs(specs, jobs=0)
            assert result.ok
            out = tmp_path / ("fig16_%s.csv" % ("legacy" if legacy else "event"))
            export.to_csv(figure16_from(result.cells()), str(out))
            paths.append(out)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class _FaultRecorder:
    """Minimal BusLike that records every FaultEvent's firing site/cycle."""

    enabled = True

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(
            (event.cycle, event.sm_id, event.site, event.detail)
        )


class TestChaosParity:
    def test_faults_fire_at_the_same_cycles(self):
        """Chaos injection consults one seeded RNG stream in simulation
        order; if the event core visited components in any different
        order the firing sequence (site, cycle) would diverge."""
        traces = []
        stats = []
        for legacy in (False, True):
            recorder = _FaultRecorder()
            injector = FaultInjector(
                FaultPlan.storm(seed=3, delay_cycles=200), obs=recorder
            )
            kernel = build_kernel("hotspot", scale=SCALE, seed=1)
            config = GPUConfig.scaled().with_(legacy_loop=legacy)
            result = simulate(
                kernel, prefetcher="snake", config=config, faults=injector
            )
            assert injector.total_fired > 0
            traces.append(recorder.events)
            stats.append(result.as_dict())
        assert traces[0] == traces[1]
        assert stats[0] == stats[1]
