"""Hardware cost model (Table 3 / Fig 21 / §5.5)."""

from repro.gpusim.area import (
    HeadTableLayout,
    TailTableLayout,
    area_overhead_fraction,
    snake_storage_bytes,
    tail_cost_sweep,
)


class TestTable3:
    """The paper's Table 3 numbers must be reproduced exactly."""

    def test_head_bytes_per_entry(self):
        assert HeadTableLayout().bytes_per_entry == 14

    def test_head_total(self):
        assert HeadTableLayout().total_bytes == 448

    def test_tail_bytes_per_entry(self):
        assert TailTableLayout().bytes_per_entry == 32

    def test_tail_total(self):
        assert TailTableLayout().total_bytes == 320

    def test_combined_storage(self):
        assert snake_storage_bytes() == 448 + 320


class TestAreaOverhead:
    def test_under_one_percent_of_v100(self):
        """§5.5: less than 1 % of the 815 mm^2 die."""
        assert area_overhead_fraction(num_sms=80) < 0.01

    def test_scales_with_sms(self):
        assert area_overhead_fraction(num_sms=80) > area_overhead_fraction(num_sms=40)

    def test_scales_with_entries(self):
        assert area_overhead_fraction(tail_entries=40) > area_overhead_fraction(tail_entries=10)


class TestSweep:
    def test_monotonic_in_entries(self):
        sweep = tail_cost_sweep([2, 5, 10, 20, 40])
        values = list(sweep.values())
        assert values == sorted(values)

    def test_includes_head_cost(self):
        sweep = tail_cost_sweep([10])
        assert sweep[10] == 448 + 320
