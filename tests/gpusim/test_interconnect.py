"""Bandwidth-limited interconnect."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.interconnect import Interconnect


class TestTiming:
    def test_latency_applied(self):
        icnt = Interconnect(bytes_per_cycle=8, latency=20)
        assert icnt.send(now=0, nbytes=8) == 1 + 20

    def test_serialization_under_load(self):
        icnt = Interconnect(bytes_per_cycle=8, latency=0)
        first = icnt.send(0, 64)   # 8 cycles of channel time
        second = icnt.send(0, 64)  # must wait for the first
        assert first == 8
        assert second == 16

    def test_idle_channel_no_queueing(self):
        icnt = Interconnect(bytes_per_cycle=8, latency=0)
        icnt.send(0, 8)
        assert icnt.send(100, 8) == 101

    def test_rejects_empty_transfer(self):
        with pytest.raises(ValueError):
            Interconnect(8, 0).send(0, 0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Interconnect(0, 0)
        with pytest.raises(ValueError):
            Interconnect(8, -1)


class TestUtilization:
    def test_idle_is_zero(self):
        icnt = Interconnect(8, 0, window=100)
        assert icnt.measured_utilization(now=50) == 0.0

    def test_fully_busy_approaches_one(self):
        icnt = Interconnect(8, 0, window=100)
        for t in range(100):
            icnt.send(t, 8)
        assert icnt.measured_utilization(now=100) == pytest.approx(1.0)

    def test_old_traffic_falls_out_of_window(self):
        icnt = Interconnect(8, 0, window=100)
        icnt.send(0, 800)
        assert icnt.measured_utilization(now=500) == 0.0

    def test_peak_bytes(self):
        assert Interconnect(8, 0).peak_bytes(100) == 800

    def test_bytes_accounted(self):
        icnt = Interconnect(8, 0)
        icnt.send(0, 40)
        icnt.send(0, 24)
        assert icnt.bytes_transferred == 64


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 256)),
                    min_size=1, max_size=50))
    def test_arrivals_after_send_time(self, transfers):
        icnt = Interconnect(8, 5)
        transfers.sort()
        for now, nbytes in transfers:
            arrival = icnt.send(now, nbytes)
            assert arrival > now

    @given(st.lists(st.integers(1, 512), min_size=1, max_size=50))
    def test_next_free_monotonic(self, sizes):
        icnt = Interconnect(8, 0)
        prev = 0
        for nbytes in sizes:
            icnt.send(0, nbytes)
            assert icnt.next_free >= prev
            prev = icnt.next_free
