"""Memory-access coalescer."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.coalescer import coalesce, line_of, num_transactions
from repro.gpusim.trace import Op, WarpInstr


def load(addr, stride, size=4):
    return WarpInstr(pc=0, op=Op.LOAD, base_addr=addr, thread_stride=stride, size_bytes=size)


class TestLineOf:
    def test_alignment(self):
        assert line_of(0, 128) == 0
        assert line_of(127, 128) == 0
        assert line_of(128, 128) == 128
        assert line_of(300, 128) == 256


class TestCoalesce:
    def test_broadcast_is_one_line(self):
        assert coalesce(load(512, 0), warp_size=32, line_bytes=128) == [512]

    def test_unit_stride_words_fill_one_line(self):
        # 32 threads x 4 bytes = 128 bytes = exactly one line
        assert coalesce(load(0, 4), warp_size=32, line_bytes=128) == [0]

    def test_unit_stride_unaligned_spans_two_lines(self):
        lines = coalesce(load(64, 4), warp_size=32, line_bytes=128)
        assert lines == [0, 128]

    def test_line_stride_touches_every_line(self):
        lines = coalesce(load(0, 128), warp_size=32, line_bytes=128)
        assert len(lines) == 32
        assert lines[0] == 0 and lines[-1] == 31 * 128

    def test_wide_access_spans_lines(self):
        lines = coalesce(load(0, 0, size=256), warp_size=32, line_bytes=128)
        assert lines == [0, 128]

    def test_rejects_non_memory(self):
        with pytest.raises(ValueError):
            coalesce(WarpInstr(pc=0, op=Op.ALU), 32, 128)

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            coalesce(load(0, 4), 32, 0)

    def test_num_transactions(self):
        assert num_transactions(load(0, 4), 32, 128) == 1
        assert num_transactions(load(0, 128), 32, 128) == 32


class TestCoalesceProperties:
    @given(
        addr=st.integers(min_value=0, max_value=1 << 30),
        stride=st.integers(min_value=0, max_value=512),
        size=st.integers(min_value=1, max_value=256),
    )
    def test_lines_unique_aligned_and_cover_footprint(self, addr, stride, size):
        lines = coalesce(load(addr, stride, size=size), 32, 128)
        assert len(lines) == len(set(lines))
        assert all(l % 128 == 0 for l in lines)
        # every thread's first and last byte must be covered
        covered = set(lines)
        for t in range(32):
            start = addr + t * stride
            assert line_of(start, 128) in covered
            assert line_of(start + size - 1, 128) in covered

    @given(stride=st.integers(min_value=0, max_value=1024))
    def test_at_most_two_lines_per_thread_for_small_accesses(self, stride):
        # a 4-byte access can straddle a line boundary, so up to 2 per thread
        lines = coalesce(load(0, stride), 32, 128)
        assert 1 <= len(lines) <= 64
