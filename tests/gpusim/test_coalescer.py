"""Memory-access coalescer."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.coalescer import (
    coalesce,
    coalesce_lines,
    coalesce_sectors,
    line_of,
    num_transactions,
)
from repro.gpusim.trace import Op, WarpInstr


def load(addr, stride, size=4):
    return WarpInstr(pc=0, op=Op.LOAD, base_addr=addr, thread_stride=stride, size_bytes=size)


class TestLineOf:
    def test_alignment(self):
        assert line_of(0, 128) == 0
        assert line_of(127, 128) == 0
        assert line_of(128, 128) == 128
        assert line_of(300, 128) == 256


class TestCoalesce:
    def test_broadcast_is_one_line(self):
        assert coalesce(load(512, 0), warp_size=32, line_bytes=128) == [512]

    def test_unit_stride_words_fill_one_line(self):
        # 32 threads x 4 bytes = 128 bytes = exactly one line
        assert coalesce(load(0, 4), warp_size=32, line_bytes=128) == [0]

    def test_unit_stride_unaligned_spans_two_lines(self):
        lines = coalesce(load(64, 4), warp_size=32, line_bytes=128)
        assert lines == [0, 128]

    def test_line_stride_touches_every_line(self):
        lines = coalesce(load(0, 128), warp_size=32, line_bytes=128)
        assert len(lines) == 32
        assert lines[0] == 0 and lines[-1] == 31 * 128

    def test_wide_access_spans_lines(self):
        lines = coalesce(load(0, 0, size=256), warp_size=32, line_bytes=128)
        assert lines == [0, 128]

    def test_rejects_non_memory(self):
        with pytest.raises(ValueError):
            coalesce(WarpInstr(pc=0, op=Op.ALU), 32, 128)

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            coalesce(load(0, 4), 32, 0)

    def test_num_transactions(self):
        assert num_transactions(load(0, 4), 32, 128) == 1
        assert num_transactions(load(0, 128), 32, 128) == 32


class TestCoalesceProperties:
    @given(
        addr=st.integers(min_value=0, max_value=1 << 30),
        stride=st.integers(min_value=0, max_value=512),
        size=st.integers(min_value=1, max_value=256),
    )
    def test_lines_unique_aligned_and_cover_footprint(self, addr, stride, size):
        lines = coalesce(load(addr, stride, size=size), 32, 128)
        assert len(lines) == len(set(lines))
        assert all(l % 128 == 0 for l in lines)
        # every thread's first and last byte must be covered
        covered = set(lines)
        for t in range(32):
            start = addr + t * stride
            assert line_of(start, 128) in covered
            assert line_of(start + size - 1, 128) in covered

    @given(stride=st.integers(min_value=0, max_value=1024))
    def test_at_most_two_lines_per_thread_for_small_accesses(self, stride):
        # a 4-byte access can straddle a line boundary, so up to 2 per thread
        lines = coalesce(load(0, stride), 32, 128)
        assert 1 <= len(lines) <= 64


def reference_lines(base, stride, size, warp_size, line_bytes):
    """The pre-memoization implementation, verbatim semantics: first-seen
    scan over threads, plus the closed-form broadcast case.  The memoized
    fast paths must reproduce this list *including emission order* —
    downstream MSHR allocation and eviction decisions depend on it."""
    if stride == 0:
        first = line_of(base, line_bytes)
        last = line_of(base + size - 1, line_bytes)
        return list(range(first, last + 1, line_bytes))
    out, seen = [], set()
    for t in range(warp_size):
        start = base + t * stride
        for offset in range(0, size, line_bytes):
            line = line_of(start + offset, line_bytes)
            if line not in seen:
                seen.add(line)
                out.append(line)
        end_line = line_of(start + size - 1, line_bytes)
        if end_line not in seen:
            seen.add(end_line)
            out.append(end_line)
    return out


class TestMemoizedAgainstReference:
    """The vectorized/memoized hot paths (docs/PERFORMANCE.md) against
    the naive reference across random shapes — order-sensitive equality."""

    @given(
        base=st.integers(min_value=0, max_value=1 << 30),
        stride=st.integers(min_value=0, max_value=600),
        size=st.integers(min_value=1, max_value=512),
        line_bytes=st.sampled_from([32, 64, 128]),
    )
    def test_positive_strides_match_reference(self, base, stride, size, line_bytes):
        got = coalesce_lines(base, stride, size, 32, line_bytes)
        assert got == reference_lines(base, stride, size, 32, line_bytes)

    @given(
        stride=st.integers(min_value=-256, max_value=-1),
        size=st.integers(min_value=1, max_value=256),
        offset=st.integers(min_value=0, max_value=127),
    )
    def test_negative_strides_match_reference(self, stride, size, offset):
        # base large enough that no thread address goes negative
        base = (1 << 20) + offset
        got = coalesce_lines(base, stride, size, 32, 128)
        assert got == reference_lines(base, stride, size, 32, 128)

    @given(
        base=st.integers(min_value=0, max_value=1 << 24),
        stride=st.integers(min_value=0, max_value=300),
        size=st.integers(min_value=1, max_value=256),
    )
    def test_memo_is_translation_invariant(self, base, stride, size):
        """Shifting the base by whole lines shifts every transaction by
        the same amount — the property the memo key relies on."""
        shifted = coalesce_lines(base + 7 * 128, stride, size, 32, 128)
        assert shifted == [
            line + 7 * 128 for line in coalesce_lines(base, stride, size, 32, 128)
        ]

    @given(
        base=st.integers(min_value=0, max_value=1 << 24),
        stride=st.integers(min_value=0, max_value=300),
        size=st.integers(min_value=1, max_value=64),
        sector_bytes=st.sampled_from([32, 64]),
    )
    def test_sector_masks_cover_lines(self, base, stride, size, sector_bytes):
        instr = load(base, stride, size=size)
        masks = coalesce_sectors(instr, 32, 128, sector_bytes)
        lines = coalesce(instr, 32, 128)
        # same line set, insertion order preserved, every mask non-empty
        assert list(masks) == lines
        sectors_per_line = 128 // sector_bytes
        for mask in masks.values():
            assert 0 < mask < (1 << sectors_per_line)
