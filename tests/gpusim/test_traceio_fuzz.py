"""Fuzzing the external-trace JSONL loader (`gpusim/traceio.py`).

The loader is the one parser in the repo that eats bytes produced by
*other people's tools* (Accel-Sim converters, hand-written scripts), so
the contract is strict: any malformed input — truncated lines, NaN or
out-of-range numerics, garbage bytes, wrong-typed fields — must raise
:class:`TraceFormatError` carrying the byte offset and record index of
the damage, never a bare ``JSONDecodeError`` / ``TypeError`` /
``IndexError`` from the decoding internals.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import KernelTrace, load_trace, save_trace
from repro.gpusim.trace import CTA, Op, WarpInstr, WarpTrace
from repro.gpusim.traceio import TraceFormatError


def small_kernel():
    warps = [
        WarpTrace(warp_id=w, instrs=[
            WarpInstr(pc=0x10, op=Op.LOAD, base_addr=4096 * w, thread_stride=4),
            WarpInstr(pc=0x18, op=Op.ALU),
            WarpInstr(pc=0x20, op=Op.LOAD, base_addr=4096 * w + 256,
                      thread_stride=4),
        ])
        for w in range(4)
    ]
    return KernelTrace(name="fuzz", ctas=[CTA(cta_id=0, warps=warps)])


@pytest.fixture
def trace_path(tmp_path):
    return save_trace(small_kernel(), tmp_path / "fuzz.trace")


def expect_format_error(path):
    with pytest.raises(TraceFormatError) as excinfo:
        load_trace(path)
    error = excinfo.value
    assert error.offset >= 0
    assert error.record_index >= 0
    assert str(path) in str(error)
    return error


class TestTruncation:
    def test_every_truncation_point_is_diagnosed_or_loads(self, trace_path):
        """Cutting the file at any byte either still parses (clean line
        boundary) or raises TraceFormatError — never anything else."""
        raw = trace_path.read_bytes()
        rng = random.Random(20260808)
        cuts = sorted(rng.sample(range(1, len(raw)), min(60, len(raw) - 1)))
        for cut in cuts:
            trace_path.write_bytes(raw[:cut])
            try:
                load_trace(trace_path)
            except TraceFormatError as error:
                assert error.record_index >= 0
            # any other exception type propagates and fails the test

    def test_truncated_mid_record_reports_index(self, trace_path):
        raw = trace_path.read_bytes()
        lines = raw.split(b"\n")
        # cut into the middle of the second record
        broken = lines[0] + b"\n" + lines[1][: len(lines[1]) // 2]
        trace_path.write_bytes(broken)
        error = expect_format_error(trace_path)
        assert error.record_index == 1
        assert error.offset == len(lines[0]) + 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_bytes(b"")
        expect_format_error(path)


class TestNumericPoison:
    def _warp_line(self, instr_fields):
        return json.dumps({"warp": 0, "instrs": [instr_fields]}).encode()

    def _write(self, tmp_path, warp_line):
        path = tmp_path / "poison.trace"
        path.write_bytes(
            b'{"kernel": "p", "version": 1}\n{"cta": 0}\n' + warp_line + b"\n"
        )
        return path

    @pytest.mark.parametrize("bad_instr", [
        [float("nan"), 1, 4096, 4, 4, 0],        # NaN pc
        [16, 1, float("inf"), 4, 4, 0],          # Infinity address
        [16, 1, -4096, 4, 4, 0],                 # negative address
        [16, 1, 1 << 80, 4, 4, 0],               # address beyond 2^64
        [16, 1, 4096.5, 4, 4, 0],                # float address
        [16, 1, 4096, 4, 0, 0],                  # zero-byte access
        [16, 1, 4096, 4, -4, 0],                 # negative size
        [True, 1, 4096, 4, 4, 0],                # boolean pc
        [16, True, 4096, 4, 4, 0],               # boolean opcode
        ["16", 1, 4096, 4, 4, 0],                # string pc
        [16, 1, "4096", 4, 4, 0],                # string address
        [16, 99, 4096, 4, 4, 0],                 # unknown opcode
        [16, 1, 4096, 4, 4, "yes"],              # non-numeric divergent flag
        [16, 1, 4096],                           # wrong field count
        "not-a-list",                            # instr is not a list
    ])
    def test_poisoned_instruction_rejected(self, tmp_path, bad_instr):
        path = self._write(tmp_path, self._warp_line(bad_instr))
        error = expect_format_error(path)
        assert error.record_index == 2

    def test_nan_literal_in_raw_bytes(self, tmp_path):
        # Python's json emits/accepts bare NaN; the loader must not.
        path = self._write(
            tmp_path, b'{"warp": 0, "instrs": [[NaN, 1, 4096, 4, 4, 0]]}'
        )
        expect_format_error(path)

    def test_float_warp_id_rejected(self, tmp_path):
        path = self._write(tmp_path, b'{"warp": 0.5, "instrs": []}')
        expect_format_error(path)

    def test_negative_cta_id_rejected(self, tmp_path):
        path = tmp_path / "cta.trace"
        path.write_bytes(b'{"kernel": "p", "version": 1}\n{"cta": -1}\n')
        error = expect_format_error(path)
        assert error.record_index == 1

    def test_non_string_kernel_name_rejected(self, tmp_path):
        path = tmp_path / "name.trace"
        path.write_bytes(b'{"kernel": 7, "version": 1}\n')
        expect_format_error(path)


class TestGarbage:
    @settings(max_examples=60, deadline=None)
    @given(garbage=st.binary(min_size=1, max_size=200))
    def test_arbitrary_bytes_never_escape_the_taxonomy(self, tmp_path_factory,
                                                       garbage):
        """Any byte blob either parses as a valid trace (vanishingly
        unlikely) or raises TraceFormatError — nothing else."""
        path = tmp_path_factory.mktemp("garbage") / "g.trace"
        path.write_bytes(garbage)
        try:
            load_trace(path)
        except TraceFormatError:
            pass

    @settings(max_examples=40, deadline=None)
    @given(garbage=st.binary(min_size=1, max_size=64),
           position=st.integers(0, 5))
    def test_garbage_spliced_into_valid_trace(self, tmp_path_factory, garbage,
                                              position):
        path = tmp_path_factory.mktemp("splice") / "s.trace"
        lines = save_trace(
            small_kernel(), path
        ).read_bytes().split(b"\n")
        index = min(position, len(lines) - 1)
        lines.insert(index, garbage.replace(b"\n", b"?"))
        path.write_bytes(b"\n".join(lines))
        try:
            load_trace(path)
        except TraceFormatError:
            pass

    def test_round_trip_still_works(self, trace_path):
        kernel = load_trace(trace_path)
        assert kernel.name == "fuzz"
        assert sum(len(c.warps) for c in kernel.ctas) == 4
