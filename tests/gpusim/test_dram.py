"""Row-buffer DRAM model."""

import pytest

from repro.gpusim.config import DRAMTimings
from repro.gpusim.dram import DRAM


def make_dram(channels=2, banks=4):
    return DRAM(
        timings=DRAMTimings(),
        channels=channels,
        banks_per_channel=banks,
        row_bytes=2048,
        clock_ratio=0.5,
        line_bytes=128,
    )


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = make_dram()
        dram.access(0, now=0)
        assert dram.row_misses == 1 and dram.row_hits == 0

    def test_same_row_hits(self):
        dram = make_dram(channels=1, banks=1)
        dram.access(0, now=0)
        dram.access(128, now=1000)
        assert dram.row_hits == 1

    def test_row_hit_faster_than_miss(self):
        hit_dram = make_dram(channels=1, banks=1)
        hit_dram.access(0, now=0)
        hit_done = hit_dram.access(128, now=10_000) - 10_000

        miss_dram = make_dram(channels=1, banks=1)
        miss_dram.access(0, now=0)
        # different row (row_bytes=2048, 1 channel)
        miss_done = miss_dram.access(1 << 20, now=10_000) - 10_000
        assert hit_done < miss_done

    def test_row_conflict_reopens(self):
        dram = make_dram(channels=1, banks=1)
        dram.access(0, now=0)
        dram.access(1 << 20, now=10_000)
        assert dram.row_misses == 2

    def test_row_hit_rate(self):
        dram = make_dram(channels=1, banks=1)
        dram.access(0, now=0)
        dram.access(128, now=1000)
        assert dram.row_hit_rate == pytest.approx(0.5)


class TestContention:
    def test_same_bank_serializes(self):
        dram = make_dram(channels=1, banks=1)
        first = dram.access(0, now=0)
        second = dram.access(128, now=0)
        assert second > first

    def test_different_channels_parallel(self):
        dram = make_dram(channels=2, banks=1)
        a = dram.access(0, now=0)      # channel 0
        b = dram.access(128, now=0)    # channel 1 (line 1)
        assert a == b  # identical row-miss latency, no serialization

    def test_counts_reads_not_writes(self):
        dram = make_dram()
        dram.access(0, now=0)
        dram.access(128, now=0, is_write=True)
        assert dram.reads == 1


class TestValidation:
    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            DRAM(DRAMTimings(), 0, 1, 2048, 0.5, 128)

    def test_completion_after_request(self):
        dram = make_dram()
        for i in range(20):
            assert dram.access(i * 128, now=i * 3) > i * 3
