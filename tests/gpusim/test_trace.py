"""Trace model types."""

import pytest

from repro.gpusim.trace import (
    CTA,
    KernelTrace,
    Op,
    WarpInstr,
    WarpTrace,
    renumber_warps,
)


def load(pc, addr, stride=4):
    return WarpInstr(pc=pc, op=Op.LOAD, base_addr=addr, thread_stride=stride)


class TestWarpInstr:
    def test_is_mem(self):
        assert load(0x10, 0).is_mem
        assert WarpInstr(pc=0x10, op=Op.STORE, base_addr=0).is_mem
        assert not WarpInstr(pc=0x10, op=Op.ALU).is_mem

    def test_rejects_negative_pc(self):
        with pytest.raises(ValueError):
            WarpInstr(pc=-1, op=Op.ALU)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            WarpInstr(pc=0, op=Op.LOAD, base_addr=-4)

    def test_frozen(self):
        instr = load(0x10, 0)
        with pytest.raises(AttributeError):
            instr.pc = 5


class TestWarpTrace:
    def test_loads_filters(self):
        trace = WarpTrace(warp_id=0, instrs=[load(1, 0), WarpInstr(pc=2, op=Op.ALU)])
        assert [i.pc for i in trace.loads()] == [1]

    def test_len_and_iter(self):
        trace = WarpTrace(warp_id=0)
        trace.append(load(1, 0))
        trace.append(load(2, 4))
        assert len(trace) == 2
        assert [i.pc for i in trace] == [1, 2]


class TestKernelTrace:
    def _kernel(self):
        w0 = WarpTrace(warp_id=0, instrs=[load(1, 0)])
        w1 = WarpTrace(warp_id=1, instrs=[load(1, 0), load(2, 8)])
        return KernelTrace(name="k", ctas=[CTA(cta_id=0, warps=[w0, w1])])

    def test_counts(self):
        kernel = self._kernel()
        assert kernel.num_warps == 2
        assert kernel.num_instrs == 3

    def test_representative_warp_has_most_loads(self):
        assert self._kernel().representative_warp().warp_id == 1

    def test_representative_warp_empty_kernel(self):
        with pytest.raises(ValueError):
            KernelTrace(name="empty").representative_warp()

    def test_all_warps_in_cta_order(self):
        assert [w.warp_id for w in self._kernel().all_warps()] == [0, 1]


class TestRenumberWarps:
    def test_dense_global_ids(self):
        ctas = [
            CTA(cta_id=0, warps=[WarpTrace(warp_id=99), WarpTrace(warp_id=99)]),
            CTA(cta_id=1, warps=[WarpTrace(warp_id=99)]),
        ]
        renumber_warps(ctas)
        ids = [w.warp_id for c in ctas for w in c.warps]
        assert ids == [0, 1, 2]
