"""MSHR file: allocate / merge / fill."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.cache import MSHR


class TestAllocate:
    def test_allocate_and_lookup(self):
        mshr = MSHR(entries=4, merge_width=2)
        entry = mshr.allocate(0x100, fill_time=50)
        assert mshr.lookup(0x100) is entry
        assert mshr.occupancy == 1

    def test_full(self):
        mshr = MSHR(entries=2, merge_width=2)
        mshr.allocate(0x100, 10)
        mshr.allocate(0x200, 10)
        assert mshr.full
        with pytest.raises(RuntimeError):
            mshr.allocate(0x300, 10)

    def test_double_allocate_rejected(self):
        mshr = MSHR(entries=4, merge_width=2)
        mshr.allocate(0x100, 10)
        with pytest.raises(RuntimeError):
            mshr.allocate(0x100, 20)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MSHR(entries=0, merge_width=1)
        with pytest.raises(ValueError):
            MSHR(entries=1, merge_width=0)


class TestMerge:
    def test_merge_within_width(self):
        mshr = MSHR(entries=4, merge_width=3)
        mshr.allocate(0x100, 10)
        assert mshr.try_merge(0x100, is_demand=True) is not None
        assert mshr.try_merge(0x100, is_demand=True) is not None
        # width 3 = 1 original + 2 merges
        assert mshr.try_merge(0x100, is_demand=True) is None

    def test_merge_unknown_line(self):
        mshr = MSHR(entries=4, merge_width=2)
        assert mshr.try_merge(0x500, is_demand=True) is None

    def test_demand_join_marks_prefetch_entry(self):
        mshr = MSHR(entries=4, merge_width=4)
        entry = mshr.allocate(0x100, 10, is_prefetch=True)
        mshr.try_merge(0x100, is_demand=True)
        assert entry.demand_joined

    def test_prefetch_merge_does_not_mark(self):
        mshr = MSHR(entries=4, merge_width=4)
        entry = mshr.allocate(0x100, 10, is_prefetch=True)
        mshr.try_merge(0x100, is_demand=False)
        assert not entry.demand_joined


class TestFill:
    def test_pop_filled_removes_due_entries(self):
        mshr = MSHR(entries=4, merge_width=2)
        mshr.allocate(0x100, fill_time=10)
        mshr.allocate(0x200, fill_time=20)
        filled = mshr.pop_filled(now=15)
        assert [e.line_addr for e in filled] == [0x100]
        assert mshr.lookup(0x100) is None
        assert mshr.lookup(0x200) is not None

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 200)),
                    min_size=1, max_size=50, unique_by=lambda t: t[0]))
    def test_pop_filled_is_exhaustive_at_horizon(self, entries):
        mshr = MSHR(entries=64, merge_width=2)
        for line_no, fill in entries:
            mshr.allocate(line_no * 128, fill)
        mshr.pop_filled(now=200)
        assert mshr.occupancy == 0
