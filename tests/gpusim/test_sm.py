"""SM issue loop: latency, blocking loads, replay, barriers, CTA turnover."""

from repro.core.throttle import NullThrottle
from repro.gpusim.config import CacheConfig, GPUConfig
from repro.gpusim.dram import DRAM
from repro.gpusim.l2 import L2Cache
from repro.gpusim.sm import SM
from repro.gpusim.trace import CTA, Op, WarpInstr, WarpTrace
from repro.prefetch.base import Prefetcher


def make_sm(config=None, prefetcher=None):
    config = config or GPUConfig.scaled()
    dram = DRAM(config.dram, config.dram_channels, config.dram_banks_per_channel,
                config.dram_row_bytes, config.dram_clock_ratio, config.l2.line_bytes)
    l2 = L2Cache(config.l2, config.l2_banks, dram)
    return SM(0, config, l2, prefetcher or Prefetcher(), NullThrottle())


def cta(warp_instr_lists, cta_id=0, first_warp=0):
    return CTA(
        cta_id=cta_id,
        warps=[
            WarpTrace(warp_id=first_warp + i, instrs=instrs)
            for i, instrs in enumerate(warp_instr_lists)
        ],
    )


def alu(pc=0x10):
    return WarpInstr(pc=pc, op=Op.ALU)


def load(pc, addr):
    return WarpInstr(pc=pc, op=Op.LOAD, base_addr=addr, thread_stride=4)


class TestBasicExecution:
    def test_all_instructions_retire(self):
        sm = make_sm()
        sm.enqueue_cta(cta([[alu(), alu(), alu()], [alu()]]))
        stats = sm.run()
        assert stats.instructions == 4
        assert stats.warps_finished == 2

    def test_alu_only_ipc_reasonable(self):
        sm = make_sm()
        sm.enqueue_cta(cta([[alu() for _ in range(100)] for _ in range(8)]))
        stats = sm.run()
        assert stats.instructions == 800
        assert 0.5 < stats.ipc <= sm.config.issue_width

    def test_load_blocks_warp(self):
        sm = make_sm()
        sm.enqueue_cta(cta([[load(0x10, 0), alu()]]))
        stats = sm.run()
        # a single warp with a cold miss must stall roughly a memory latency
        assert stats.cycles > 100
        assert stats.stall_cycles_memory > 0

    def test_store_does_not_block(self):
        sm = make_sm()
        store = WarpInstr(pc=0x10, op=Op.STORE, base_addr=0, thread_stride=4)
        sm.enqueue_cta(cta([[store, alu()]]))
        stats = sm.run()
        assert stats.cycles < 50


class TestStallClassification:
    def test_memory_stalls_dominate_for_memory_bound(self):
        sm = make_sm()
        sm.enqueue_cta(
            cta([[load(0x10 + 8 * i, i * 4096) for i in range(10)] for _ in range(4)])
        )
        stats = sm.run()
        assert stats.memory_stall_fraction > 0.8

    def test_alu_stalls_not_memory(self):
        sm = make_sm()
        sm.enqueue_cta(cta([[alu() for _ in range(20)]]))
        stats = sm.run()
        assert stats.stall_cycles_memory == 0


class TestReplay:
    def test_reservation_fail_replays_to_completion(self):
        config = GPUConfig.scaled().with_(mshr_entries=1, miss_queue_depth=1)
        sm = make_sm(config)
        # two warps missing on different lines: the second must replay
        sm.enqueue_cta(cta([[load(0x10, 0)], [load(0x10, 1 << 20)]]))
        stats = sm.run()
        assert stats.warps_finished == 2
        assert stats.l1_reservation_fails > 0
        assert stats.instructions == 2


class TestBarrier:
    def test_barrier_synchronizes_cta(self):
        bar = WarpInstr(pc=0x50, op=Op.BARRIER)
        sm = make_sm()
        # warp 0 does a long load before the barrier, warp 1 arrives early
        sm.enqueue_cta(cta([[load(0x10, 0), bar, alu()], [bar, alu()]]))
        stats = sm.run()
        assert stats.warps_finished == 2
        assert stats.instructions == 5

    def test_single_warp_barrier_is_transparent(self):
        bar = WarpInstr(pc=0x50, op=Op.BARRIER)
        sm = make_sm()
        sm.enqueue_cta(cta([[bar, alu()]]))
        stats = sm.run()
        assert stats.warps_finished == 1


class TestCTATurnover:
    def test_queued_ctas_activate_when_slots_free(self):
        config = GPUConfig.scaled().with_(max_threads_per_sm=2 * 32)  # 2 warps
        sm = make_sm(config)
        sm.enqueue_cta(cta([[alu()], [alu()]], cta_id=0, first_warp=0))
        sm.enqueue_cta(cta([[alu()], [alu()]], cta_id=1, first_warp=2))
        stats = sm.run()
        assert stats.warps_finished == 4
        assert stats.instructions == 4


class TestPrefetcherHook:
    def test_prefetcher_sees_every_load_once(self):
        seen = []

        class Recorder(Prefetcher):
            def observe(self, event):
                seen.append((event.warp_id, event.pc, event.base_addr))
                return []

        sm = make_sm(prefetcher=Recorder())
        sm.enqueue_cta(cta([[load(0x10, 0), load(0x18, 128)]]))
        sm.run()
        assert seen == [(0, 0x10, 0), (0, 0x18, 128)]

    def test_replay_does_not_retrain(self):
        seen = []

        class Recorder(Prefetcher):
            def observe(self, event):
                seen.append(event.pc)
                return []

        config = GPUConfig.scaled().with_(mshr_entries=1, miss_queue_depth=1)
        sm = make_sm(config, prefetcher=Recorder())
        sm.enqueue_cta(cta([[load(0x10, 0)], [load(0x20, 1 << 20)]]))
        stats = sm.run()
        assert stats.l1_reservation_fails > 0
        assert len(seen) == 2  # one observation per static load, not per replay
