"""Shared banked L2."""

import pytest

from repro.gpusim.config import CacheConfig, DRAMTimings
from repro.gpusim.dram import DRAM
from repro.gpusim.l2 import L2Cache


def make_l2(banks=4, latency=100):
    dram = DRAM(DRAMTimings(), channels=2, banks_per_channel=4,
                row_bytes=2048, clock_ratio=0.5, line_bytes=128)
    config = CacheConfig(size_bytes=16 * 1024, assoc=8, line_bytes=128, latency=latency)
    return L2Cache(config, banks=banks, dram=dram), dram


class TestHitMiss:
    def test_miss_then_hit(self):
        l2, dram = make_l2()
        first = l2.access(0, now=0)
        second = l2.access(0, now=first + 1)
        assert l2.misses == 1 and l2.hits == 1
        assert second - (first + 1) < first  # hit is faster than the miss

    def test_miss_goes_to_dram(self):
        l2, dram = make_l2()
        l2.access(0, now=0)
        assert dram.reads == 1

    def test_hit_does_not_touch_dram(self):
        l2, dram = make_l2()
        done = l2.access(0, now=0)
        l2.access(0, now=done + 1)
        assert dram.reads == 1

    def test_hit_rate(self):
        l2, _ = make_l2()
        done = l2.access(0, now=0)
        l2.access(0, now=done + 1)
        assert l2.hit_rate == pytest.approx(0.5)


class TestMerging:
    def test_inflight_merge_costs_one_dram_read(self):
        l2, dram = make_l2()
        first = l2.access(0, now=0)
        merged = l2.access(0, now=1)  # before the fill returns
        assert dram.reads == 1
        assert merged >= first - 128  # data cannot appear before the fill

    def test_merge_counts_as_hit(self):
        l2, _ = make_l2()
        l2.access(0, now=0)
        l2.access(0, now=1)
        assert l2.hits == 1


class TestBanking:
    def test_same_bank_serializes(self):
        l2, _ = make_l2(banks=4)
        line = 128 * 4  # same bank as line 0 when banks=4
        a = l2.access(0, now=0)
        b = l2.access(line, now=0)
        assert b > a or l2._bank_next_free[0] > 4

    def test_rejects_zero_banks(self):
        dram = DRAM(DRAMTimings(), 1, 1, 2048, 0.5, 128)
        config = CacheConfig(size_bytes=1024, assoc=1, line_bytes=128, latency=10)
        with pytest.raises(ValueError):
            L2Cache(config, banks=0, dram=dram)
