"""Trace validation."""

import pytest

from repro.gpusim.trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace
from repro.gpusim.validate import assert_valid, validate_kernel
from repro.workloads import BENCHMARKS, build_kernel


def load(pc=0x10, addr=0):
    return WarpInstr(pc=pc, op=Op.LOAD, base_addr=addr, thread_stride=4)


def kernel_of(*ctas):
    return KernelTrace(name="t", ctas=list(ctas))


class TestErrors:
    def test_empty_kernel(self):
        issues = validate_kernel(KernelTrace(name="e"))
        assert any(i.severity == "error" for i in issues)

    def test_duplicate_warp_ids(self):
        cta = CTA(cta_id=0, warps=[
            WarpTrace(warp_id=5, instrs=[load()]),
            WarpTrace(warp_id=5, instrs=[load()]),
        ])
        issues = validate_kernel(kernel_of(cta))
        assert any("duplicate warp id" in i.message for i in issues)

    def test_duplicate_cta_ids(self):
        ctas = [CTA(cta_id=1, warps=[WarpTrace(warp_id=0, instrs=[load()])]),
                CTA(cta_id=1, warps=[WarpTrace(warp_id=1, instrs=[load()])])]
        issues = validate_kernel(kernel_of(*ctas))
        assert any("duplicate CTA id" in i.message for i in issues)

    def test_huge_address(self):
        cta = CTA(cta_id=0, warps=[
            WarpTrace(warp_id=0, instrs=[load(addr=1 << 60)]),
        ])
        issues = validate_kernel(kernel_of(cta))
        assert any("beyond" in i.message for i in issues)

    def test_mismatched_barriers_deadlock(self):
        bar = WarpInstr(pc=0x50, op=Op.BARRIER)
        cta = CTA(cta_id=0, warps=[
            WarpTrace(warp_id=0, instrs=[load(), bar]),
            WarpTrace(warp_id=1, instrs=[load()]),
        ])
        issues = validate_kernel(kernel_of(cta))
        assert any("deadlock" in i.message for i in issues)

    def test_assert_valid_raises_with_details(self):
        cta = CTA(cta_id=0, warps=[
            WarpTrace(warp_id=5, instrs=[load()]),
            WarpTrace(warp_id=5, instrs=[load()]),
        ])
        with pytest.raises(ValueError, match="duplicate warp id"):
            assert_valid(kernel_of(cta))


class TestWarnings:
    def test_empty_warp_warns(self):
        cta = CTA(cta_id=0, warps=[WarpTrace(warp_id=0)])
        issues = validate_kernel(kernel_of(cta))
        assert any(i.severity == "warning" and "no instructions" in i.message
                   for i in issues)

    def test_no_memory_cta_warns(self):
        cta = CTA(cta_id=0, warps=[
            WarpTrace(warp_id=0, instrs=[WarpInstr(pc=1, op=Op.ALU)]),
        ])
        issues = validate_kernel(kernel_of(cta))
        assert any("no memory accesses" in i.message for i in issues)

    def test_warnings_do_not_raise(self):
        cta = CTA(cta_id=0, warps=[WarpTrace(warp_id=0)])
        assert_valid(kernel_of(cta))  # warnings only


class TestBenchmarksAreValid:
    @pytest.mark.parametrize("app", BENCHMARKS)
    def test_builtin_workloads_have_no_errors(self, app):
        kernel = build_kernel(app, scale=0.25, seed=1)
        errors = [i for i in validate_kernel(kernel) if i.severity == "error"]
        assert errors == []

    def test_issue_str(self):
        from repro.gpusim.validate import ValidationIssue

        issue = ValidationIssue("error", "k/cta0", "boom")
        assert "error" in str(issue) and "boom" in str(issue)
