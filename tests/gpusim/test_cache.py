"""SetAssocCache tag store."""

from hypothesis import given, settings, strategies as st

from repro.gpusim.cache import SetAssocCache
from repro.gpusim.config import CacheConfig


def make_cache(size=4096, assoc=4, line=128):
    return SetAssocCache(CacheConfig(size_bytes=size, assoc=assoc, line_bytes=line, latency=1))


def lines_in_same_set(cache, count):
    """Generate ``count`` distinct line addresses mapping to one set."""
    target = cache.set_index(0)
    found = []
    addr = 0
    while len(found) < count:
        if cache.set_index(addr) == target:
            found.append(addr)
        addr += cache.config.line_bytes
    return found


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.touch(0, now=0) is None
        cache.insert(0, now=0)
        assert cache.touch(0, now=1) is not None

    def test_touch_marks_used_and_updates_time(self):
        cache = make_cache()
        cache.insert(0, now=0)
        state = cache.touch(0, now=5)
        assert state.used and state.last_use == 5

    def test_lookup_does_not_change_lru(self):
        cache = make_cache()
        a, b = lines_in_same_set(cache, 2)
        cache.insert(a, now=0)
        cache.insert(b, now=1)
        cache.lookup(a)  # must NOT promote a
        assert cache.lru_victim(cache.set_index(a)).addr == a

    def test_insert_refill_keeps_line(self):
        cache = make_cache()
        cache.insert(0, now=0)
        assert cache.insert(0, now=5) is None
        assert cache.occupancy == 1


class TestLRU:
    def test_lru_eviction_order(self):
        cache = make_cache()
        addrs = lines_in_same_set(cache, 5)
        for i, addr in enumerate(addrs[:4]):
            cache.insert(addr, now=i)
        evicted = cache.insert(addrs[4], now=10)
        assert evicted.addr == addrs[0]

    def test_touch_protects_from_eviction(self):
        cache = make_cache()
        addrs = lines_in_same_set(cache, 5)
        for i, addr in enumerate(addrs[:4]):
            cache.insert(addr, now=i)
        cache.touch(addrs[0], now=9)  # promote oldest to MRU
        evicted = cache.insert(addrs[4], now=10)
        assert evicted.addr == addrs[1]

    def test_explicit_victim(self):
        cache = make_cache()
        addrs = lines_in_same_set(cache, 5)
        for i, addr in enumerate(addrs[:4]):
            cache.insert(addr, now=i)
        victim = cache.lines_in_set(cache.set_index(addrs[0]))[2]
        evicted = cache.insert(addrs[4], now=10, victim=victim)
        assert evicted.addr == victim.addr


class TestHashing:
    def test_power_of_two_strides_spread_over_sets(self):
        """The XOR fold must avoid the pathological single-set mapping for
        large power-of-two strides."""
        cache = make_cache(size=32 * 1024, assoc=8, line=128)  # 32 sets
        sets = {cache.set_index(i * 4096) for i in range(64)}
        assert len(sets) > 8

    def test_index_stable(self):
        cache = make_cache()
        assert cache.set_index(12345 * 128) == cache.set_index(12345 * 128)


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
    def test_occupancy_never_exceeds_capacity(self, line_numbers):
        cache = make_cache(size=2048, assoc=2, line=128)  # 16 lines
        for i, n in enumerate(line_numbers):
            cache.insert(n * 128, now=i)
        assert cache.occupancy <= cache.config.num_lines
        for s in range(cache.num_sets):
            assert len(cache.lines_in_set(s)) <= cache.config.assoc

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100))
    def test_most_recent_insert_is_resident(self, line_numbers):
        cache = make_cache(size=2048, assoc=2, line=128)
        for i, n in enumerate(line_numbers):
            cache.insert(n * 128, now=i)
        assert cache.lookup(line_numbers[-1] * 128) is not None

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=2, max_size=80))
    def test_evict_removes(self, line_numbers):
        cache = make_cache()
        for i, n in enumerate(line_numbers):
            cache.insert(n * 128, now=i)
        cache.evict(line_numbers[0] * 128)
        assert cache.lookup(line_numbers[0] * 128) is None
