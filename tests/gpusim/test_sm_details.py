"""SM corner cases: SFU, issue width, wide stores, prefetch footprints,
per-app tagging, prefetcher pipeline latency."""

from repro.core.throttle import NullThrottle
from repro.gpusim.config import GPUConfig
from repro.gpusim.dram import DRAM
from repro.gpusim.l2 import L2Cache
from repro.gpusim.sm import SM
from repro.gpusim.trace import CTA, Op, WarpInstr, WarpTrace
from repro.prefetch.base import AccessEvent, Prefetcher, PrefetchRequest


def make_sm(config=None, prefetcher=None, throttle=None):
    config = config or GPUConfig.scaled()
    dram = DRAM(config.dram, config.dram_channels, config.dram_banks_per_channel,
                config.dram_row_bytes, config.dram_clock_ratio, config.l2.line_bytes)
    l2 = L2Cache(config.l2, config.l2_banks, dram)
    return SM(0, config, l2, prefetcher or Prefetcher(), throttle or NullThrottle())


def cta_of(*warp_instrs, cta_id=0):
    return CTA(cta_id=cta_id, warps=[
        WarpTrace(warp_id=i, instrs=list(instrs))
        for i, instrs in enumerate(warp_instrs)
    ])


class TestLatencies:
    def test_sfu_slower_than_alu(self):
        alu_sm = make_sm()
        alu_sm.enqueue_cta(cta_of([WarpInstr(pc=1, op=Op.ALU)] * 20))
        alu_cycles = alu_sm.run().cycles

        sfu_sm = make_sm()
        sfu_sm.enqueue_cta(cta_of([WarpInstr(pc=1, op=Op.SFU)] * 20))
        assert sfu_sm.run().cycles > alu_cycles

    def test_issue_width_bounds_throughput(self):
        wide = make_sm(GPUConfig.scaled().with_(issue_width=4))
        wide.enqueue_cta(cta_of(*[[WarpInstr(pc=1, op=Op.ALU)] * 50] * 8))
        narrow = make_sm(GPUConfig.scaled().with_(issue_width=1))
        narrow.enqueue_cta(cta_of(*[[WarpInstr(pc=1, op=Op.ALU)] * 50] * 8))
        assert narrow.run().cycles > wide.run().cycles


class TestWideAccesses:
    def test_scattered_store_counts_bandwidth_per_line(self):
        sm = make_sm()
        store = WarpInstr(pc=1, op=Op.STORE, base_addr=0, thread_stride=256)
        sm.enqueue_cta(cta_of([store]))
        stats = sm.run()
        assert stats.icnt_bytes >= 32 * 8  # one request header per line

    def test_scattered_load_fills_every_line(self):
        sm = make_sm()
        load = WarpInstr(pc=1, op=Op.LOAD, base_addr=0, thread_stride=256)
        sm.enqueue_cta(cta_of([load]))
        stats = sm.run()
        assert stats.l1_misses + stats.l1_reserved >= 16


class TestPrefetchFootprint:
    def test_prefetch_request_expands_with_trigger_stride(self):
        class OneShot(Prefetcher):
            def __init__(self):
                self.done = False

            def observe(self, event):
                if self.done:
                    return []
                self.done = True
                return [PrefetchRequest(base_addr=1 << 20)]

        sm = make_sm(prefetcher=OneShot())
        # broadcast trigger -> single-line prefetch footprint
        load = WarpInstr(pc=1, op=Op.LOAD, base_addr=0, thread_stride=0)
        sm.enqueue_cta(cta_of([load]))
        stats = sm.run()
        assert stats.prefetch.issued == 1

    def test_prefetch_delayed_by_pipeline_latency(self):
        issued_at = []

        class OneShot(Prefetcher):
            def __init__(self):
                self.done = False

            def observe(self, event):
                if self.done:
                    return []
                self.done = True
                return [PrefetchRequest(base_addr=1 << 20)]

        config = GPUConfig.scaled().with_(prefetcher_latency=7)
        sm = make_sm(config, prefetcher=OneShot())
        original = sm.l1.prefetch_trigger

        def spy(vectors, now, issue_at, throttle):
            issued_at.extend(
                (line, issue_at) for vector in vectors for line in vector
            )
            return original(vectors, now, issue_at, throttle)

        sm.l1.prefetch_trigger = spy
        load = WarpInstr(pc=1, op=Op.LOAD, base_addr=0, thread_stride=0)
        sm.enqueue_cta(cta_of([load]))
        sm.run()
        assert issued_at and issued_at[0][1] == 7  # trigger at cycle 0 + latency


class TestAppTagging:
    def test_events_carry_app_id(self):
        seen = []

        class Recorder(Prefetcher):
            def observe(self, event: AccessEvent):
                seen.append(event.app_id)
                return []

        sm = make_sm(prefetcher=Recorder())
        load = WarpInstr(pc=1, op=Op.LOAD, base_addr=0, thread_stride=4)
        sm.enqueue_cta(cta_of([load], cta_id=0), app_id=3)
        sm.run()
        assert seen == [3]
