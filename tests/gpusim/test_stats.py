"""SimStats accounting and merging."""

import pytest

from repro.gpusim.stats import PrefetchStats, SimStats


class TestRates:
    def test_empty_stats_are_zero(self):
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.l1_hit_rate == 0.0
        assert stats.coverage == 0.0
        assert stats.memory_stall_fraction == 0.0

    def test_ipc(self):
        stats = SimStats(cycles=100, instructions=250)
        assert stats.ipc == 2.5

    def test_hit_rate_excludes_fails(self):
        stats = SimStats(l1_hits=6, l1_misses=2, l1_reserved=2,
                         l1_reservation_fails=90)
        assert stats.l1_hit_rate == pytest.approx(0.6)

    def test_reservation_fail_rate_includes_fails(self):
        stats = SimStats(l1_hits=5, l1_misses=3, l1_reserved=2,
                         l1_reservation_fails=10)
        assert stats.reservation_fail_rate == pytest.approx(0.5)

    def test_bandwidth_capped_at_one(self):
        stats = SimStats(icnt_bytes=200, icnt_peak_bytes=100)
        assert stats.bandwidth_utilization == 1.0

    def test_coverage_and_accuracy(self):
        stats = SimStats(l1_hits=8, l1_misses=2)
        stats.prefetch.demand_covered = 5
        stats.prefetch.demand_timely = 4
        assert stats.coverage == pytest.approx(0.5)
        assert stats.accuracy == pytest.approx(0.4)


class TestMerge:
    def test_cycles_take_max(self):
        a = SimStats(cycles=100, instructions=10)
        b = SimStats(cycles=70, instructions=20)
        a.merge(b)
        assert a.cycles == 100
        assert a.instructions == 30

    def test_counters_sum(self):
        a = SimStats(l1_hits=1, icnt_bytes=10)
        b = SimStats(l1_hits=2, icnt_bytes=5)
        a.prefetch.issued = 3
        b.prefetch.issued = 4
        a.merge(b)
        assert a.l1_hits == 3
        assert a.icnt_bytes == 15
        assert a.prefetch.issued == 7

    def test_as_dict_keys(self):
        d = SimStats(cycles=1, instructions=1).as_dict()
        for key in ("ipc", "coverage", "accuracy", "l1_hit_rate"):
            assert key in d


class TestPrefetchStats:
    def test_rates_guard_zero(self):
        p = PrefetchStats()
        assert p.coverage(0) == 0.0
        assert p.accuracy(0) == 0.0

    def test_rates(self):
        p = PrefetchStats(demand_covered=3, demand_timely=2)
        assert p.coverage(10) == pytest.approx(0.3)
        assert p.accuracy(10) == pytest.approx(0.2)
