"""SimStats accounting and merging."""

import pytest

from repro.gpusim.stats import PrefetchStats, SimStats


class TestRates:
    def test_empty_stats_are_zero(self):
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.l1_hit_rate == 0.0
        assert stats.coverage == 0.0
        assert stats.memory_stall_fraction == 0.0

    def test_ipc(self):
        stats = SimStats(cycles=100, instructions=250)
        assert stats.ipc == 2.5

    def test_hit_rate_excludes_fails(self):
        stats = SimStats(l1_hits=6, l1_misses=2, l1_reserved=2,
                         l1_reservation_fails=90)
        assert stats.l1_hit_rate == pytest.approx(0.6)

    def test_reservation_fail_rate_includes_fails(self):
        stats = SimStats(l1_hits=5, l1_misses=3, l1_reserved=2,
                         l1_reservation_fails=10)
        assert stats.reservation_fail_rate == pytest.approx(0.5)

    def test_bandwidth_capped_at_one(self):
        stats = SimStats(icnt_bytes=200, icnt_peak_bytes=100)
        assert stats.bandwidth_utilization == 1.0

    def test_coverage_and_accuracy(self):
        stats = SimStats(l1_hits=8, l1_misses=2)
        stats.prefetch.demand_covered = 5
        stats.prefetch.demand_timely = 4
        assert stats.coverage == pytest.approx(0.5)
        assert stats.accuracy == pytest.approx(0.4)


class TestMerge:
    def test_cycles_take_max(self):
        a = SimStats(cycles=100, instructions=10)
        b = SimStats(cycles=70, instructions=20)
        a.merge(b)
        assert a.cycles == 100
        assert a.instructions == 30

    def test_counters_sum(self):
        a = SimStats(l1_hits=1, icnt_bytes=10)
        b = SimStats(l1_hits=2, icnt_bytes=5)
        a.prefetch.issued = 3
        b.prefetch.issued = 4
        a.merge(b)
        assert a.l1_hits == 3
        assert a.icnt_bytes == 15
        assert a.prefetch.issued == 7

    def test_as_dict_keys(self):
        d = SimStats(cycles=1, instructions=1).as_dict()
        for key in ("ipc", "coverage", "accuracy", "l1_hit_rate"):
            assert key in d


class TestPrefetchStats:
    def test_rates_guard_zero(self):
        p = PrefetchStats()
        assert p.coverage(0) == 0.0
        assert p.accuracy(0) == 0.0

    def test_rates(self):
        p = PrefetchStats(demand_covered=3, demand_timely=2)
        assert p.coverage(10) == pytest.approx(0.3)
        assert p.accuracy(10) == pytest.approx(0.2)


class TestConservationAudit:
    """SimStats.verify / conservation_violations — the self-check the
    sanitizer runs at cadence and tests chain onto simulate() calls."""

    def test_empty_stats_are_sound(self):
        stats = SimStats()
        assert stats.conservation_violations() == []
        assert stats.verify() is stats

    def test_plausible_run_is_sound(self):
        stats = SimStats(cycles=100, instructions=50, l1_hits=8, l1_misses=2,
                         l2_hits=1, l2_misses=1, dram_reads=1,
                         dram_row_hits=1)
        stats.prefetch.issued = 4
        stats.prefetch.demand_covered = 3
        stats.prefetch.demand_timely = 2
        assert stats.verify() is stats

    def test_negative_counter_is_caught(self):
        stats = SimStats(l1_hits=-1)
        with pytest.raises(ValueError, match="l1_hits"):
            stats.verify()

    def test_timely_exceeding_covered_is_caught(self):
        stats = SimStats(l1_hits=10)
        stats.prefetch.demand_covered = 2
        stats.prefetch.demand_timely = 5
        with pytest.raises(ValueError, match="timely credits"):
            stats.verify()

    def test_covered_exceeding_accesses_is_caught(self):
        stats = SimStats(l1_hits=1, l1_misses=1)
        stats.prefetch.demand_covered = 50
        with pytest.raises(ValueError):
            stats.verify()

    def test_verify_lists_every_violation(self):
        stats = SimStats(l1_hits=-1, l1_misses=-2)
        assert len(stats.conservation_violations()) >= 2
        with pytest.raises(ValueError, match="problems"):
            stats.verify()


class TestAccuracyDefinitions:
    """The two normalizations documented in docs/METRICS.md."""

    def test_accuracy_is_an_alias_of_timely_coverage(self):
        p = PrefetchStats(demand_covered=6, demand_timely=4)
        assert p.accuracy(10) == p.timely_coverage(10) == pytest.approx(0.4)

    def test_timely_coverage_never_exceeds_coverage(self):
        p = PrefetchStats(demand_covered=6, demand_timely=4)
        assert p.timely_coverage(10) <= p.coverage(10)

    def test_predictions_include_duplicate_drops(self):
        p = PrefetchStats(issued=8, dropped_duplicate=2, dropped_throttled=5)
        assert p.predictions == 10  # throttled never became predictions

    def test_issue_accuracy_normalizes_per_prediction(self):
        p = PrefetchStats(issued=8, dropped_duplicate=2, demand_covered=5)
        assert p.issue_accuracy() == pytest.approx(0.5)

    def test_issue_accuracy_guards_zero(self):
        assert PrefetchStats().issue_accuracy() == 0.0

    def test_issue_accuracy_cannot_exceed_one_via_duplicates(self):
        # A duplicate-dropped prediction still earns demand_covered credit;
        # the denominator must count the attempt too.
        p = PrefetchStats(issued=1, dropped_duplicate=3, demand_covered=4)
        assert p.issue_accuracy() <= 1.0

    def test_simstats_exposes_both(self):
        stats = SimStats(l1_hits=8, l1_misses=2)
        stats.prefetch.issued = 4
        stats.prefetch.demand_covered = 2
        stats.prefetch.demand_timely = 1
        assert stats.timely_coverage == stats.accuracy == pytest.approx(0.1)
        assert stats.prefetch_accuracy == pytest.approx(0.5)
        assert stats.as_dict()["prefetch_accuracy"] == pytest.approx(0.5)
