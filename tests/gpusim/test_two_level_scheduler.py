"""Two-level warp scheduler."""

from dataclasses import dataclass

import pytest

from repro.gpusim.scheduler import TwoLevelScheduler, make_scheduler


@dataclass
class FakeWarp:
    warp_id: int


def warps(*ids):
    return [FakeWarp(i) for i in ids]


class TestActiveSet:
    def test_schedules_within_active_set(self):
        sched = TwoLevelScheduler(active_size=2)
        ready = warps(0, 1, 2, 3)
        seen = set()
        for _ in range(8):
            warp = sched.pick(ready)
            sched.note_issued(warp)
            seen.add(warp.warp_id)
        assert seen == {0, 1}  # only the active pair is scheduled

    def test_refills_when_active_warp_stalls(self):
        sched = TwoLevelScheduler(active_size=2)
        sched.pick(warps(0, 1, 2))
        # warp 0 stalls (no longer ready): 2 rotates in
        picked = {sched.pick(warps(1, 2)).warp_id for _ in range(4)}
        assert picked <= {1, 2}

    def test_round_robin_within_set(self):
        sched = TwoLevelScheduler(active_size=3)
        ready = warps(0, 1, 2)
        order = []
        for _ in range(6):
            warp = sched.pick(ready)
            sched.note_issued(warp)
            order.append(warp.warp_id)
        assert order == [0, 1, 2, 0, 1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TwoLevelScheduler().pick([])

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            TwoLevelScheduler(active_size=0)


class TestFactory:
    def test_factory_name(self):
        assert isinstance(make_scheduler("two_level"), TwoLevelScheduler)

    def test_end_to_end(self):
        from repro.gpusim import GPUConfig, simulate
        from repro.workloads import build_kernel

        kernel = build_kernel("lps", scale=0.25, seed=1)
        config = GPUConfig.scaled().with_(scheduler="two_level")
        stats = simulate(kernel, prefetcher="snake", config=config)
        assert stats.instructions == kernel.num_instrs
