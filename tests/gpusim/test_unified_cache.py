"""Unified L1 controller: demand path, prefetch path, storage disciplines."""

import pytest

from repro.gpusim.config import CacheConfig, DRAMTimings, GPUConfig
from repro.gpusim.dram import DRAM
from repro.gpusim.interconnect import Interconnect
from repro.gpusim.l2 import L2Cache
from repro.gpusim.stats import SimStats
from repro.gpusim.unified_cache import L1Outcome, StorageMode, UnifiedL1Cache


def make_l1(mode=StorageMode.COUPLED, mshr=8, merge=2, queue=4, assoc=4,
            size=2048):
    config = GPUConfig.scaled().with_(
        l1=CacheConfig(size_bytes=size, assoc=assoc, line_bytes=128, latency=28),
        mshr_entries=mshr,
        mshr_merge=merge,
        miss_queue_depth=queue,
    )
    dram = DRAM(DRAMTimings(), 2, 4, 2048, 0.5, 128)
    l2 = L2Cache(config.l2, banks=4, dram=dram)
    stats = SimStats()
    l1 = UnifiedL1Cache(
        config,
        Interconnect(config.icnt_bytes_per_cycle, config.icnt_latency),
        Interconnect(config.icnt_bytes_per_cycle, config.icnt_latency),
        l2,
        stats,
        mode=mode,
    )
    return l1, stats


def fill_line(l1, line, now=0):
    """Demand-miss a line and commit its fill."""
    outcome, ready = l1.demand_load(line, now)
    assert outcome is L1Outcome.MISS
    l1.demand_load(line, ready + 1)  # commits the fill, then hits
    return ready + 1


class TestDemandPath:
    def test_cold_miss(self):
        l1, stats = make_l1()
        outcome, ready = l1.demand_load(0, now=0)
        assert outcome is L1Outcome.MISS
        assert ready > 0
        assert stats.l1_misses == 1

    def test_hit_after_fill(self):
        l1, stats = make_l1()
        t = fill_line(l1, 0)
        assert stats.l1_hits == 1
        outcome, ready = l1.demand_load(0, t + 1)
        assert outcome is L1Outcome.HIT
        assert ready == t + 1 + l1.config.l1.latency

    def test_reserved_merge_on_inflight(self):
        l1, stats = make_l1()
        _, fill = l1.demand_load(0, 0)
        outcome, ready = l1.demand_load(0, 1)
        assert outcome is L1Outcome.RESERVED
        assert ready >= fill - 1
        assert stats.l1_reserved == 1

    def test_merge_width_exhaustion_fails(self):
        l1, stats = make_l1(merge=2)
        l1.demand_load(0, 0)
        l1.demand_load(0, 1)  # merge 2/2
        outcome, retry = l1.demand_load(0, 2)
        assert outcome is L1Outcome.RESERVATION_FAIL
        assert retry == 2 + l1.config.replay_interval
        assert stats.l1_reservation_fails == 1

    def test_mshr_full_fails(self):
        l1, stats = make_l1(mshr=2, queue=100)
        l1.demand_load(0, 0)
        l1.demand_load(128, 0)
        outcome, _ = l1.demand_load(256, 0)
        assert outcome is L1Outcome.RESERVATION_FAIL

    def test_miss_queue_full_fails(self):
        l1, stats = make_l1(mshr=100, queue=1)
        l1.demand_load(0, 0)
        outcome, _ = l1.demand_load(128, 0)
        assert outcome is L1Outcome.RESERVATION_FAIL

    def test_store_is_write_through(self):
        l1, stats = make_l1()
        done = l1.demand_store(0, now=0)
        assert done == 1
        assert stats.icnt_bytes > 0
        # no-allocate: a later load still misses
        outcome, _ = l1.demand_load(0, 5)
        assert outcome is L1Outcome.MISS


class TestPrefetchPath:
    def test_prefetch_fills_and_demand_hits_timely(self):
        l1, stats = make_l1()
        assert l1.prefetch(0, now=0)
        outcome, _ = l1.demand_load(0, now=2000)
        assert outcome is L1Outcome.HIT
        assert stats.prefetch.demand_covered == 1
        assert stats.prefetch.demand_timely == 1

    def test_late_prefetch_covered_not_timely(self):
        l1, stats = make_l1()
        l1.prefetch(0, now=0)
        outcome, _ = l1.demand_load(0, now=1)  # still in flight
        assert outcome is L1Outcome.RESERVED
        assert stats.prefetch.demand_covered == 1
        assert stats.prefetch.demand_timely == 0

    def test_duplicate_prefetch_dropped_and_marks_prediction(self):
        l1, stats = make_l1()
        t = fill_line(l1, 0)
        assert not l1.prefetch(0, now=t)
        assert stats.prefetch.dropped_duplicate == 1
        outcome, _ = l1.demand_load(0, t + 1)
        assert outcome is L1Outcome.HIT
        assert stats.prefetch.demand_covered == 1

    def test_prediction_credited_once(self):
        l1, stats = make_l1()
        t = fill_line(l1, 0)
        l1.prefetch(0, now=t)
        l1.demand_load(0, t + 1)
        l1.demand_load(0, t + 2)
        assert stats.prefetch.demand_covered == 1

    def test_prefetch_respects_mshr_headroom(self):
        l1, stats = make_l1(mshr=4, queue=100)
        for i in range(3):
            l1.demand_load(i * 128, 0)
        # 3 of 4 entries used; the cap is 3 -> prefetch must yield
        assert not l1.prefetch(1024, now=0)
        assert stats.prefetch.dropped_throttled == 1

    def test_magic_prefetch_is_instant_and_free(self):
        l1, stats = make_l1()
        l1.magic_prefetch(0)
        outcome, _ = l1.demand_load(0, now=0)
        assert outcome is L1Outcome.HIT
        assert stats.prefetch.demand_timely == 1
        assert stats.icnt_bytes == 0


class TestDecoupled:
    def test_prefetch_flag_flips_on_use(self):
        l1, _ = make_l1(mode=StorageMode.DECOUPLED)
        l1.prefetch(0, now=0)
        l1.demand_load(0, now=2000)
        state = l1.store.lookup(0)
        assert state is not None
        assert not state.is_prefetch and state.transferred

    def test_untrained_demand_confined_to_half(self):
        l1, _ = make_l1(mode=StorageMode.DECOUPLED, assoc=4, size=512)
        l1.prefetcher_trained = False
        set_lines = []
        addr = 0
        target = l1.store.set_index(0)
        while len(set_lines) < 6:
            if l1.store.set_index(addr) == target:
                set_lines.append(addr)
            addr += 128
        now = 0
        for line in set_lines[:4]:
            now = fill_line(l1, line, now) + 10
        demand = [l for l in l1.store.lines_in_set(target) if not l.is_prefetch]
        assert len(demand) <= 2  # half of 4 ways

    def test_unused_prefetch_eviction_counted(self):
        l1, stats = make_l1(mode=StorageMode.DECOUPLED, assoc=2, size=256,
                            mshr=64, queue=64)
        target = l1.store.set_index(0)
        same_set = []
        addr = 0
        while len(same_set) < 8:
            if l1.store.set_index(addr) == target:
                same_set.append(addr)
            addr += 128
        now = 0
        for line in same_set:
            l1.prefetch(line, now)
            now += 4000  # let each fill land; grace expires between fills
        l1.free_space_fraction(now + 100_000)
        assert stats.prefetch.unused_evicted > 0


class TestIsolated:
    def test_prefetch_goes_to_side_buffer(self):
        l1, _ = make_l1(mode=StorageMode.ISOLATED)
        l1.prefetch(0, now=0)
        l1.free_space_fraction(10_000)  # commit fills
        assert l1.side_buffer.lookup(0) is not None
        assert l1.store.lookup(0) is None

    def test_demand_hits_side_buffer(self):
        l1, stats = make_l1(mode=StorageMode.ISOLATED)
        l1.prefetch(0, now=0)
        outcome, _ = l1.demand_load(0, now=10_000)
        assert outcome is L1Outcome.HIT
        assert stats.prefetch.demand_timely == 1

    def test_free_space_measures_side_buffer(self):
        l1, _ = make_l1(mode=StorageMode.ISOLATED)
        assert l1.free_space_fraction(0) == 1.0
        l1.prefetch(0, now=0)
        assert l1.free_space_fraction(10_000) < 1.0


class TestIntrospection:
    def test_free_space_fraction_decreases(self):
        l1, _ = make_l1()
        before = l1.free_space_fraction(0)
        fill_line(l1, 0)
        assert l1.free_space_fraction(10_000) < before

    def test_unused_prefetch_fraction(self):
        l1, _ = make_l1()
        assert l1.unused_prefetch_fraction(0) == 0.0
        l1.prefetch(0, now=0)
        assert l1.unused_prefetch_fraction(10_000) > 0.0

    def test_line_of(self):
        l1, _ = make_l1()
        assert l1.line_of(200) == 128
