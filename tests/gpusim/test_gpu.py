"""GPU top level and the simulate() convenience API."""

import pytest

from repro.gpusim import GPU, GPUConfig, simulate
from repro.gpusim.trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace, renumber_warps


def small_kernel(num_ctas=4, warps=4, iters=10):
    ctas = []
    for c in range(num_ctas):
        cta_warps = []
        for w in range(warps):
            instrs = []
            base = (c * warps + w) * 4096
            for i in range(iters):
                instrs.append(
                    WarpInstr(pc=0x10, op=Op.LOAD, base_addr=base + i * 512,
                              thread_stride=4)
                )
                instrs.append(WarpInstr(pc=0x18, op=Op.ALU))
            cta_warps.append(WarpTrace(warp_id=0, instrs=instrs))
        ctas.append(CTA(cta_id=c, warps=cta_warps))
    renumber_warps(ctas)
    return KernelTrace(name="small", ctas=ctas)


class TestGPU:
    def test_runs_to_completion(self):
        gpu = GPU(config=GPUConfig.scaled())
        stats = gpu.run(small_kernel()).verify()
        assert stats.warps_finished == 16
        assert stats.instructions == small_kernel().num_instrs

    def test_rejects_empty_kernel(self):
        with pytest.raises(ValueError):
            GPU(config=GPUConfig.scaled()).run(KernelTrace(name="empty"))

    def test_ctas_distributed_round_robin(self):
        gpu = GPU(config=GPUConfig.scaled(num_sms=2))
        gpu.run(small_kernel(num_ctas=4))
        for sm in gpu.sms:
            assert sm.stats.warps_finished == 8

    def test_l2_and_dram_stats_collected(self):
        gpu = GPU(config=GPUConfig.scaled())
        stats = gpu.run(small_kernel())
        assert stats.l2_misses > 0
        assert stats.dram_reads > 0

    def test_cycles_are_max_across_sms(self):
        gpu = GPU(config=GPUConfig.scaled(num_sms=2))
        stats = gpu.run(small_kernel())
        assert stats.cycles == max(sm.stats.cycles for sm in gpu.sms)


class TestSimulateAPI:
    def test_baseline(self):
        stats = simulate(small_kernel(), prefetcher="none")
        assert stats.coverage == 0.0
        assert stats.ipc > 0

    def test_every_comparison_point_runs(self):
        kernel = small_kernel(num_ctas=2, warps=2, iters=5)
        from repro.prefetch import COMPARISON_POINTS

        for mech in COMPARISON_POINTS + ["ideal", "isolated-snake", "none"]:
            stats = simulate(kernel, prefetcher=mech).verify()
            assert stats.instructions == kernel.num_instrs, mech

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            simulate(small_kernel(), prefetcher="does-not-exist")

    def test_intra_prefetcher_covers_strided_loop(self):
        stats = simulate(small_kernel(iters=30), prefetcher="intra")
        assert stats.coverage > 0.3

    def test_deterministic(self):
        kernel = small_kernel()
        a = simulate(kernel, prefetcher="snake")
        b = simulate(kernel, prefetcher="snake")
        assert a.cycles == b.cycles
        assert a.prefetch.issued == b.prefetch.issued
