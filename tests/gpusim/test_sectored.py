"""Sectored L1 fetches (opt-in, Volta-style 32 B sectors)."""

import pytest

from repro.gpusim import GPUConfig, simulate
from repro.gpusim.coalescer import coalesce_sectors
from repro.gpusim.trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace, renumber_warps


def load(pc, addr, stride=4, size=4):
    return WarpInstr(pc=pc, op=Op.LOAD, base_addr=addr, thread_stride=stride,
                     size_bytes=size)


def kernel_of(instr_lists):
    ctas = [CTA(cta_id=0, warps=[WarpTrace(warp_id=i, instrs=instrs)
                                 for i, instrs in enumerate(instr_lists)])]
    renumber_warps(ctas)
    return KernelTrace(name="sector", ctas=ctas)


class TestCoalesceSectors:
    def test_broadcast_touches_one_sector(self):
        masks = coalesce_sectors(load(0, 0, stride=0), 32, 128, 32)
        assert masks == {0: 0b0001}

    def test_full_line_access_touches_all_sectors(self):
        masks = coalesce_sectors(load(0, 0, stride=4), 32, 128, 32)
        assert masks == {0: 0b1111}

    def test_sparse_access_skips_sectors(self):
        # one 4-byte word at offset 40: only sector 1 of the line
        masks = coalesce_sectors(load(0, 40, stride=0), 32, 128, 32)
        assert masks == {0: 0b0010}

    def test_rejects_bad_sector_size(self):
        with pytest.raises(ValueError):
            coalesce_sectors(load(0, 0), 32, 128, 48)


class TestSectoredL1:
    def _config(self):
        return GPUConfig.scaled().with_(l1_sector_bytes=32)

    def test_sector_miss_on_resident_line(self):
        # one warp reads sector 0, then sector 3 of the same line: the
        # second access must miss (the data was never fetched)
        kernel = kernel_of([[load(0x10, 0, stride=0),
                             load(0x20, 96, stride=0)]])
        stats = simulate(kernel, prefetcher="none", config=self._config())
        assert stats.l1_misses == 2

    def test_whole_line_mode_hits_second_sector(self):
        kernel = kernel_of([[load(0x10, 0, stride=0),
                             load(0x20, 96, stride=0)]])
        stats = simulate(kernel, prefetcher="none",
                         config=GPUConfig.scaled())
        assert stats.l1_misses == 1
        assert stats.l1_hits == 1

    def test_same_sector_rereference_hits(self):
        kernel = kernel_of([[load(0x10, 0, stride=0),
                             load(0x20, 16, stride=0)]])
        stats = simulate(kernel, prefetcher="none", config=self._config())
        assert stats.l1_hits == 1

    def test_sparse_traffic_shrinks(self):
        """The point of sectoring: sparse accesses move fewer bytes."""
        instrs = [[load(0x10 + 8 * i, i * 4096, stride=0) for i in range(30)]]
        sectored = simulate(kernel_of(instrs), prefetcher="none",
                            config=self._config())
        whole = simulate(kernel_of(instrs), prefetcher="none",
                         config=GPUConfig.scaled())
        assert sectored.icnt_bytes < whole.icnt_bytes * 0.6

    def test_dense_traffic_unchanged(self):
        instrs = [[load(0x10, i * 128, stride=4) for i in range(30)]]
        sectored = simulate(kernel_of(instrs), prefetcher="none",
                            config=self._config())
        whole = simulate(kernel_of(instrs), prefetcher="none",
                         config=GPUConfig.scaled())
        assert sectored.icnt_bytes == whole.icnt_bytes

    def test_snake_runs_on_sectored_cache(self):
        from repro.workloads import build_kernel

        kernel = build_kernel("lps", scale=0.25, seed=1)
        stats = simulate(kernel, prefetcher="snake", config=self._config())
        assert stats.instructions == kernel.num_instrs
        assert stats.coverage > 0.3
