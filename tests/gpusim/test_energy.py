"""Energy model."""

import pytest

from repro.gpusim.energy import EnergyParams, energy_of
from repro.gpusim.stats import SimStats


def stats(cycles=1000, instructions=500, dram_reads=10):
    s = SimStats(cycles=cycles, instructions=instructions,
                 l1_hits=100, l1_misses=20, dram_reads=dram_reads,
                 l2_hits=10, l2_misses=10, icnt_bytes=2000)
    return s


class TestEnergy:
    def test_total_is_sum_of_parts(self):
        breakdown = energy_of(stats(), num_sms=2)
        parts = (breakdown.static_j + breakdown.core_j + breakdown.l1_j
                 + breakdown.l2_j + breakdown.dram_j + breakdown.icnt_j
                 + breakdown.prefetcher_j)
        assert breakdown.total_j == pytest.approx(parts)

    def test_longer_runtime_costs_more(self):
        short = energy_of(stats(cycles=1000), num_sms=2).total_j
        long = energy_of(stats(cycles=5000), num_sms=2).total_j
        assert long > short

    def test_dram_traffic_costs(self):
        low = energy_of(stats(dram_reads=10), num_sms=2).total_j
        high = energy_of(stats(dram_reads=10_000), num_sms=2).total_j
        assert high > low

    def test_prefetcher_statics_and_table_energy(self):
        s = stats()
        s.prefetch.table_accesses = 100_000
        without = energy_of(s, num_sms=2, prefetcher_present=False)
        with_pf = energy_of(s, num_sms=2, prefetcher_present=True)
        assert with_pf.prefetcher_j > 0
        assert without.prefetcher_j == 0
        assert with_pf.total_j > without.total_j

    def test_prefetcher_overhead_is_small(self):
        """§5.5: Snake's power overhead is <1 %."""
        s = stats(cycles=100_000, instructions=50_000, dram_reads=1_000)
        s.prefetch.table_accesses = 50_000
        base = energy_of(s, num_sms=2, prefetcher_present=False).total_j
        snake = energy_of(s, num_sms=2, prefetcher_present=True).total_j
        assert (snake - base) / base < 0.01

    def test_custom_params(self):
        params = EnergyParams(dram_access_pj=0.0)
        breakdown = energy_of(stats(), num_sms=1, params=params)
        assert breakdown.dram_j == 0.0
