"""Fault injection: plan validation, injector determinism, the
performance-only correctness contract, and telemetry emission.

The load-bearing property here is the one `snake-repro chaos` asserts in
CI: any fault plan may cost cycles but must leave the demand-visible
outcome (committed instructions, finished warps) identical to the
fault-free run, with the conservation sanitizer green throughout.
"""

import pytest

from repro.gpusim import FaultInjector, FaultPlan, GPUConfig, simulate
from repro.gpusim.faults import DEFAULT_RATES, SITES, catalog
from repro.workloads import build_kernel

SANITIZED = GPUConfig.scaled().with_(sanitize=True)


def _kernel(app="lps", scale=0.2, seed=1):
    return build_kernel(app, scale=scale, seed=seed)


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.make({"l3.meltdown": 0.5})

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.make({"icnt.drop_fill": 1.5})

    def test_bad_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_cycles"):
            FaultPlan.make({"icnt.delay_fill": 0.1}, delay_cycles=0)

    def test_storm_covers_every_site(self):
        assert dict(FaultPlan.storm().rates) == DEFAULT_RATES
        assert FaultPlan.storm().label() == "storm"

    def test_single_site_label(self):
        plan = FaultPlan.single("l2.latency_spike")
        assert plan.label() == "l2.latency_spike"

    def test_dict_round_trip(self):
        plan = FaultPlan.make(
            {"icnt.drop_fill": 0.1, "snake.tail_corrupt": 0.02},
            seed=9, delay_cycles=250,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_catalog_matches_sites(self):
        assert set(catalog()) == set(SITES) == set(DEFAULT_RATES)


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(FaultPlan.storm(seed=7))
        b = FaultInjector(FaultPlan.storm(seed=7))
        seq_a = [a.should(SITES[i % len(SITES)]) for i in range(500)]
        seq_b = [b.should(SITES[i % len(SITES)]) for i in range(500)]
        assert seq_a == seq_b

    def test_different_seeds_diverge(self):
        a = FaultInjector(FaultPlan.storm(seed=1))
        b = FaultInjector(FaultPlan.storm(seed=2))
        seq_a = [a.should("icnt.delay_fill") for _ in range(500)]
        seq_b = [b.should("icnt.delay_fill") for _ in range(500)]
        assert seq_a != seq_b

    def test_unlisted_site_never_fires(self):
        inj = FaultInjector(FaultPlan.single("icnt.drop_fill", rate=1.0))
        assert not any(inj.should("dram.latency_spike") for _ in range(100))

    def test_delay_jitters_within_band(self):
        inj = FaultInjector(
            FaultPlan.single("l2.latency_spike", rate=1.0, delay_cycles=400)
        )
        delays = [inj.delay("l2.latency_spike") for _ in range(50)]
        assert all(200 <= d <= 800 for d in delays)
        assert inj.counts["l2.latency_spike"] == 50

    def test_faulted_simulation_is_reproducible(self):
        runs = [
            simulate(
                _kernel(), prefetcher="snake", config=SANITIZED,
                faults=FaultInjector(FaultPlan.storm(seed=3)),
            )
            for _ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].instructions == runs[1].instructions
        assert runs[0].l1_hits == runs[1].l1_hits


class TestCorrectnessContract:
    """Faults cost cycles, never correctness — per site and all at once."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return simulate(_kernel(), prefetcher="snake", config=SANITIZED)

    @pytest.mark.parametrize("site", SITES)
    def test_each_site_preserves_demand_outcome(self, site, baseline):
        injector = FaultInjector(
            FaultPlan.single(site, rate=min(1.0, DEFAULT_RATES[site] * 4))
        )
        stats = simulate(
            _kernel(), prefetcher="snake", config=SANITIZED, faults=injector
        )
        assert injector.total_fired > 0, "site %s never fired" % site
        assert stats.instructions == baseline.instructions
        assert stats.warps_finished == baseline.warps_finished

    def test_storm_preserves_demand_outcome(self, baseline):
        injector = FaultInjector(FaultPlan.storm(seed=11))
        stats = simulate(
            _kernel(), prefetcher="snake", config=SANITIZED, faults=injector
        )
        assert injector.total_fired > 0
        assert stats.instructions == baseline.instructions
        assert stats.warps_finished == baseline.warps_finished
        assert stats.verify() is stats

    def test_plan_accepted_directly_by_gpu(self, baseline):
        # simulate()/GPU promote a bare plan to an injector internally
        stats = simulate(
            _kernel(), prefetcher="snake", config=SANITIZED,
            faults=FaultPlan.storm(seed=11),
        )
        assert stats.instructions == baseline.instructions


class TestTelemetry:
    def test_fault_events_reach_the_bus(self):
        from repro.obs import EventBus
        from repro.obs.events import EventKind, Sink

        class RecordingSink(Sink):
            def __init__(self):
                self.events = []

            def accept(self, event):
                self.events.append(event)

        bus = EventBus()
        sink = bus.attach(RecordingSink())
        injector = FaultInjector(FaultPlan.storm(seed=0), obs=bus)
        simulate(
            _kernel(), prefetcher="snake", config=SANITIZED, faults=injector
        )
        faults = [e for e in sink.events if e.kind is EventKind.FAULT]
        assert len(faults) == injector.total_fired > 0
        assert {e.site for e in faults} <= set(SITES)
        assert all(e.cycle >= 0 for e in faults)

    def test_summary_reports_configured_sites_only(self):
        injector = FaultInjector(FaultPlan.single("icnt.drop_fill", rate=1.0))
        injector.fires("icnt.drop_fill")
        assert injector.summary() == {"icnt.drop_fill": 1}


@pytest.mark.slow
class TestChaosSoak:
    """Tier-2: many seeds x several apps, sanitizer armed throughout."""

    APPS = ("lps", "hotspot", "backprop")
    SEEDS = range(5)

    @pytest.mark.parametrize("app", APPS)
    def test_storms_never_break_correctness(self, app):
        kernel = build_kernel(app, scale=0.2, seed=1)
        baseline = simulate(kernel, prefetcher="snake", config=SANITIZED)
        for seed in self.SEEDS:
            injector = FaultInjector(FaultPlan.storm(seed=seed))
            stats = simulate(
                build_kernel(app, scale=0.2, seed=1),
                prefetcher="snake", config=SANITIZED, faults=injector,
            )
            assert stats.instructions == baseline.instructions, (app, seed)
            assert stats.warps_finished == baseline.warps_finished, (app, seed)
            assert stats.verify() is stats
