"""GPUConfig / CacheConfig / DRAMTimings (Table 1)."""

import pytest

from repro.gpusim.config import (
    CacheConfig,
    DRAMTimings,
    GPUConfig,
    InvalidConfigError,
)


class TestCacheConfig:
    def test_geometry(self):
        cache = CacheConfig(size_bytes=128 * 1024, assoc=256, line_bytes=128, latency=28)
        assert cache.num_lines == 1024
        assert cache.num_sets == 4

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=3, line_bytes=128, latency=1)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=0, line_bytes=128, latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=1, line_bytes=128, latency=-1)


class TestTable1Defaults:
    """The volta_v100 preset must match Table 1 of the paper."""

    def test_sm_count(self):
        assert GPUConfig.volta_v100().num_sms == 80

    def test_core_clock(self):
        assert GPUConfig.volta_v100().core_clock_mhz == 1530

    def test_scheduler_is_gto(self):
        assert GPUConfig.volta_v100().scheduler == "gto"

    def test_schedulers_per_sm(self):
        assert GPUConfig.volta_v100().schedulers_per_sm == 4

    def test_threads_per_sm(self):
        config = GPUConfig.volta_v100()
        assert config.max_threads_per_sm == 2048
        assert config.max_warps_per_sm == 64

    def test_register_file(self):
        assert GPUConfig.volta_v100().registers_per_sm == 65536

    def test_register_limit_matches_thread_limit_at_default_pressure(self):
        # 32 regs/thread x 32 lanes x 64 warps fills the 64K file exactly
        config = GPUConfig.volta_v100()
        assert config.registers_per_thread == 32
        assert config.max_warps_per_sm == 64

    def test_register_hungry_kernels_shrink_resident_warps(self):
        config = GPUConfig.volta_v100().with_(registers_per_thread=64)
        assert config.max_warps_per_sm == 32

    def test_smaller_register_file_binds_occupancy(self):
        config = GPUConfig.volta_v100().with_(registers_per_sm=32 * 1024)
        assert config.max_warps_per_sm == 32

    def test_rejects_nonpositive_registers_per_thread(self):
        with pytest.raises(InvalidConfigError):
            GPUConfig.volta_v100().with_(registers_per_thread=0)

    def test_register_file_must_hold_at_least_one_warp(self):
        with pytest.raises(InvalidConfigError):
            GPUConfig.volta_v100().with_(
                registers_per_sm=1000, registers_per_thread=32
            )

    def test_unified_cache(self):
        l1 = GPUConfig.volta_v100().l1
        assert l1.size_bytes == 128 * 1024
        assert l1.assoc == 256
        assert l1.line_bytes == 128
        assert l1.latency == 28

    def test_mshr(self):
        config = GPUConfig.volta_v100()
        assert config.mshr_entries == 512
        assert config.mshr_merge == 8

    def test_l2(self):
        l2 = GPUConfig.volta_v100().l2
        assert l2.size_bytes == 96 * 1024
        assert l2.assoc == 24
        assert l2.line_bytes == 128

    def test_l2_banks(self):
        assert GPUConfig.volta_v100().l2_banks == 64

    def test_dram_timings(self):
        dram = GPUConfig.volta_v100().dram
        assert dram == DRAMTimings(
            t_ccd=1, t_rrd=3, t_rcd=12, t_ras=28, t_rp=12, t_rc=40,
            t_cl=12, t_wl=2, t_cdlr=3, t_wr=10, t_ccdl=2, t_rtpl=3,
        )

    def test_snake_defaults(self):
        config = GPUConfig.volta_v100()
        assert config.tail_entries == 10
        assert config.head_entries == 32
        assert config.throttle_interval == 50
        assert config.train_threshold == 3


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)

    def test_rejects_bad_clock_ratio(self):
        with pytest.raises(ValueError):
            GPUConfig(dram_clock_ratio=0.0)

    def test_rejects_shared_mem_eating_cache(self):
        with pytest.raises(ValueError):
            GPUConfig(shared_mem_bytes=128 * 1024)


class TestInvalidConfigError:
    """validate() rejects nonsensical parameters with one typed error."""

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_sms", 0),
            ("warp_size", 0),
            ("max_threads_per_sm", 16),  # < one warp
            ("schedulers_per_sm", 0),
            ("issue_width", 0),
            ("replay_interval", 0),
            ("l1_sector_bytes", 48),  # not a power of two
            ("shared_mem_bytes", -1),
            ("shared_mem_bytes", 32 * 1024),  # eats the whole scaled L1
            ("mshr_entries", 0),
            ("mshr_merge", 0),
            ("miss_queue_depth", 0),
            ("l2_banks", 0),
            ("icnt_bytes_per_cycle", 0),
            ("icnt_latency", -1),
            ("dram_channels", 0),
            ("dram_banks_per_channel", 0),
            ("dram_row_bytes", 0),
            ("dram_clock_ratio", 0.0),
            ("dram_clock_ratio", 1.5),
            ("tail_entries", 0),
            ("head_entries", 0),
            ("throttle_interval", -1),
            ("throttle_bw_low", 0.9),  # low above high (0.7)
            ("train_threshold", 0),
            ("prefetcher_latency", -1),
            ("max_chain_depth", 0),
            ("decouple_grace", -1),
            ("telemetry_bucket_cycles", 0),
            ("watchdog_cycles", -1),
            ("max_cycles", -1),
        ],
    )
    def test_rejects_each_bad_field(self, field, value):
        with pytest.raises(InvalidConfigError) as exc:
            GPUConfig.scaled().with_(**{field: value})
        assert len(exc.value.violations) == 1

    def test_rejects_non_pow2_line_size(self):
        l1 = CacheConfig(size_bytes=96 * 64, assoc=1, line_bytes=96, latency=1)
        with pytest.raises(InvalidConfigError) as exc:
            GPUConfig.scaled().with_(l1=l1)
        assert any("power of two" in v for v in exc.value.violations)

    def test_one_error_lists_every_violation(self):
        with pytest.raises(InvalidConfigError) as exc:
            GPUConfig(num_sms=0, warp_size=0, issue_width=0, tail_entries=0)
        assert len(exc.value.violations) == 4
        assert "4 problems" in str(exc.value)
        for fragment in ("num_sms", "warp_size", "issue_width", "tail_entries"):
            assert fragment in str(exc.value)

    def test_is_a_value_error(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)

    def test_validate_is_noop_on_sane_configs(self):
        GPUConfig.volta_v100().validate()
        GPUConfig.scaled().validate()


class TestDictRoundTrip:
    def test_round_trip_preserves_the_config(self):
        config = GPUConfig.scaled().with_(tail_entries=20, watchdog_cycles=5)
        assert GPUConfig.from_dict(config.to_dict()) == config

    def test_nested_dataclasses_survive(self):
        back = GPUConfig.from_dict(GPUConfig.volta_v100().to_dict())
        assert isinstance(back.l1, CacheConfig)
        assert isinstance(back.dram, DRAMTimings)
        assert back.dram.t_ras == 28

    def test_unknown_field_raises_invalid_config(self):
        with pytest.raises(InvalidConfigError):
            GPUConfig.from_dict({"num_sms": 2, "flux_capacitor": 88})

    def test_invalid_values_raise_invalid_config(self):
        with pytest.raises(InvalidConfigError):
            GPUConfig.from_dict({"num_sms": 0})


class TestScaledPreset:
    def test_same_per_sm_knobs(self):
        scaled = GPUConfig.scaled()
        full = GPUConfig.volta_v100()
        assert scaled.warp_size == full.warp_size
        assert scaled.scheduler == full.scheduler
        assert scaled.tail_entries == full.tail_entries
        assert scaled.train_threshold == full.train_threshold

    def test_sm_count_override(self):
        assert GPUConfig.scaled(num_sms=4).num_sms == 4

    def test_with_replaces_fields(self):
        config = GPUConfig.scaled().with_(tail_entries=20)
        assert config.tail_entries == 20
        assert config.num_sms == GPUConfig.scaled().num_sms

    def test_l1_data_bytes(self):
        config = GPUConfig.scaled()
        assert config.l1_data_bytes == config.l1.size_bytes
