"""GPUConfig / CacheConfig / DRAMTimings (Table 1)."""

import pytest

from repro.gpusim.config import CacheConfig, DRAMTimings, GPUConfig


class TestCacheConfig:
    def test_geometry(self):
        cache = CacheConfig(size_bytes=128 * 1024, assoc=256, line_bytes=128, latency=28)
        assert cache.num_lines == 1024
        assert cache.num_sets == 4

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=3, line_bytes=128, latency=1)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=0, line_bytes=128, latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=1, line_bytes=128, latency=-1)


class TestTable1Defaults:
    """The volta_v100 preset must match Table 1 of the paper."""

    def test_sm_count(self):
        assert GPUConfig.volta_v100().num_sms == 80

    def test_core_clock(self):
        assert GPUConfig.volta_v100().core_clock_mhz == 1530

    def test_scheduler_is_gto(self):
        assert GPUConfig.volta_v100().scheduler == "gto"

    def test_schedulers_per_sm(self):
        assert GPUConfig.volta_v100().schedulers_per_sm == 4

    def test_threads_per_sm(self):
        config = GPUConfig.volta_v100()
        assert config.max_threads_per_sm == 2048
        assert config.max_warps_per_sm == 64

    def test_register_file(self):
        assert GPUConfig.volta_v100().registers_per_sm == 65536

    def test_unified_cache(self):
        l1 = GPUConfig.volta_v100().l1
        assert l1.size_bytes == 128 * 1024
        assert l1.assoc == 256
        assert l1.line_bytes == 128
        assert l1.latency == 28

    def test_mshr(self):
        config = GPUConfig.volta_v100()
        assert config.mshr_entries == 512
        assert config.mshr_merge == 8

    def test_l2(self):
        l2 = GPUConfig.volta_v100().l2
        assert l2.size_bytes == 96 * 1024
        assert l2.assoc == 24
        assert l2.line_bytes == 128

    def test_l2_banks(self):
        assert GPUConfig.volta_v100().l2_banks == 64

    def test_dram_timings(self):
        dram = GPUConfig.volta_v100().dram
        assert dram == DRAMTimings(
            t_ccd=1, t_rrd=3, t_rcd=12, t_ras=28, t_rp=12, t_rc=40,
            t_cl=12, t_wl=2, t_cdlr=3, t_wr=10, t_ccdl=2, t_rtpl=3,
        )

    def test_snake_defaults(self):
        config = GPUConfig.volta_v100()
        assert config.tail_entries == 10
        assert config.head_entries == 32
        assert config.throttle_interval == 50
        assert config.train_threshold == 3


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)

    def test_rejects_bad_clock_ratio(self):
        with pytest.raises(ValueError):
            GPUConfig(dram_clock_ratio=0.0)

    def test_rejects_shared_mem_eating_cache(self):
        with pytest.raises(ValueError):
            GPUConfig(shared_mem_bytes=128 * 1024)


class TestScaledPreset:
    def test_same_per_sm_knobs(self):
        scaled = GPUConfig.scaled()
        full = GPUConfig.volta_v100()
        assert scaled.warp_size == full.warp_size
        assert scaled.scheduler == full.scheduler
        assert scaled.tail_entries == full.tail_entries
        assert scaled.train_threshold == full.train_threshold

    def test_sm_count_override(self):
        assert GPUConfig.scaled(num_sms=4).num_sms == 4

    def test_with_replaces_fields(self):
        config = GPUConfig.scaled().with_(tail_entries=20)
        assert config.tail_entries == 20
        assert config.num_sms == GPUConfig.scaled().num_sms

    def test_l1_data_bytes(self):
        config = GPUConfig.scaled()
        assert config.l1_data_bytes == config.l1.size_bytes
