"""Forward-progress watchdog and max_cycles deadman."""

import pytest

from repro.gpusim import GPUConfig
from repro.gpusim.gpu import GPU, SimulationHangError
from repro.gpusim.watchdog import Watchdog
from repro.workloads import build_kernel

SCALE = 0.05


class _FakeStats:
    def __init__(self):
        self.instructions = 0
        self.warps_finished = 0
        self.l1_hits = 0
        self.l1_misses = 0
        self.l1_reserved = 0
        self.l1_reservation_fails = 0


class _FakeSM:
    def __init__(self):
        self.stats = _FakeStats()


class _FakeL2:
    hits = 0
    misses = 0


class _FakeDRAM:
    reads = 0


class _FakeGPU:
    def __init__(self):
        self.sms = [_FakeSM()]
        self.l2 = _FakeL2()
        self.dram = _FakeDRAM()


@pytest.fixture
def stub_dump(monkeypatch):
    monkeypatch.setattr(
        "repro.gpusim.watchdog.collect_state_dump",
        lambda gpu, **kwargs: {"stub": True},
    )


class TestTwoStrikeRule:
    """A single over-window clock jump must not fire the watchdog; two
    consecutive checks without progress must."""

    def test_single_large_gap_only_arms(self, stub_dump):
        gpu = _FakeGPU()
        wd = Watchdog(gpu, window_cycles=100, max_cycles=0)
        wd.check(0)
        wd.check(500)  # way past the window -> strike 1, no raise

    def test_second_strike_fires(self, stub_dump):
        gpu = _FakeGPU()
        wd = Watchdog(gpu, window_cycles=100, max_cycles=0)
        wd.check(0)
        wd.check(500)
        with pytest.raises(SimulationHangError) as exc:
            wd.check(1000)
        assert exc.value.reason == "no_forward_progress"
        assert exc.value.state_dump == {"stub": True}

    def test_progress_resets_the_strikes(self, stub_dump):
        gpu = _FakeGPU()
        wd = Watchdog(gpu, window_cycles=100, max_cycles=0)
        wd.check(0)
        wd.check(500)  # strike 1
        gpu.sms[0].stats.instructions += 1  # progress!
        wd.check(1000)
        wd.check(1500)  # strike 1 again, not 2
        gpu.sms[0].stats.instructions += 1
        wd.check(2000)

    def test_reservation_fails_are_not_progress(self, stub_dump):
        """A replay storm bumps only l1_reservation_fails — that must read
        as 'hung', it IS the livelock signature."""
        gpu = _FakeGPU()
        wd = Watchdog(gpu, window_cycles=100, max_cycles=0)
        wd.check(0)
        gpu.sms[0].stats.l1_reservation_fails += 1000
        wd.check(500)
        gpu.sms[0].stats.l1_reservation_fails += 1000
        with pytest.raises(SimulationHangError):
            wd.check(1000)

    def test_disabled_window_never_fires(self, stub_dump):
        wd = Watchdog(_FakeGPU(), window_cycles=0, max_cycles=0)
        for now in (0, 10_000, 10_000_000):
            wd.check(now)


class TestMaxCyclesDeadman:
    def test_fires_past_the_limit(self, stub_dump):
        wd = Watchdog(_FakeGPU(), window_cycles=0, max_cycles=1000)
        wd.check(1000)
        with pytest.raises(SimulationHangError) as exc:
            wd.check(1001)
        assert exc.value.reason == "max_cycles"


class TestIntegration:
    def test_livelocked_gpu_raises_with_state_dump(self):
        from repro.gpusim.unified_cache import L1Outcome, UnifiedL1Cache

        def always_fail(self, line_addr, now, sector_mask=-1):
            self.stats.l1_reservation_fails += 1
            return (L1Outcome.RESERVATION_FAIL, now + self.config.replay_interval)

        original = UnifiedL1Cache.demand_load
        UnifiedL1Cache.demand_load = always_fail
        try:
            config = GPUConfig.scaled().with_(watchdog_cycles=3_000)
            gpu = GPU(config=config)
            with pytest.raises(SimulationHangError) as exc:
                gpu.run(build_kernel("lps", scale=SCALE, seed=1))
        finally:
            UnifiedL1Cache.demand_load = original

        assert exc.value.reason == "no_forward_progress"
        dump = exc.value.state_dump
        assert dump["sms"], "state dump must name the stuck SMs"
        stuck = dump["sms"][0]
        assert stuck["live_warps"] > 0
        assert stuck["warps"], "per-warp states must be present"
        assert {"l2", "dram"} <= set(dump)

    def test_max_cycles_aborts_a_real_run(self):
        config = GPUConfig.scaled().with_(max_cycles=200, watchdog_cycles=0)
        gpu = GPU(config=config)
        with pytest.raises(SimulationHangError) as exc:
            gpu.run(build_kernel("lps", scale=SCALE, seed=1))
        assert exc.value.reason == "max_cycles"

    def test_hang_dump_embeds_the_sanitizer_audit_trail(self):
        """A sanitized run that hangs reports when the books last
        balanced, so 'hung while sound' and 'hung after corruption' are
        distinguishable post mortem."""
        config = GPUConfig.scaled().with_(
            max_cycles=5_000, watchdog_cycles=0, sanitize=True,
            sanitize_interval=500,
        )
        gpu = GPU(config=config)
        with pytest.raises(SimulationHangError) as exc:
            gpu.run(build_kernel("lps", scale=0.5, seed=1))
        audit = exc.value.state_dump["sanitizer"]
        assert audit["checks"] > 0
        assert audit["interval"] == 500
        assert audit["last_clean"]["sms"]

    def test_unsanitized_hang_dump_has_no_audit_section(self):
        config = GPUConfig.scaled().with_(max_cycles=200, watchdog_cycles=0)
        gpu = GPU(config=config)
        with pytest.raises(SimulationHangError) as exc:
            gpu.run(build_kernel("lps", scale=SCALE, seed=1))
        assert "sanitizer" not in exc.value.state_dump

    def test_healthy_run_is_unaffected_by_the_watchdog(self):
        kernel = build_kernel("lps", scale=SCALE, seed=1)
        with_wd = GPU(config=GPUConfig.scaled()).run(kernel)
        without = GPU(
            config=GPUConfig.scaled().with_(watchdog_cycles=0)
        ).run(kernel)
        assert with_wd.to_json_dict() == without.to_json_dict()
