"""Demand-priority scheduling across the memory path.

GPU memory systems serve demand responses ahead of best-effort prefetch
traffic; these tests pin the virtual-channel semantics of the interconnect,
L2 banks, and DRAM, plus the promotion of merged prefetch fills.
"""

import pytest

from repro.gpusim.config import CacheConfig, DRAMTimings, GPUConfig
from repro.gpusim.dram import DRAM
from repro.gpusim.interconnect import Interconnect
from repro.gpusim.l2 import L2Cache
from repro.gpusim.stats import SimStats
from repro.gpusim.unified_cache import L1Outcome, StorageMode, UnifiedL1Cache


class TestInterconnectPriority:
    def test_priority_unaffected_by_best_effort_backlog(self):
        icnt = Interconnect(bytes_per_cycle=8, latency=0)
        icnt.send(0, 8_000)  # best-effort backlog: 1000 cycles of channel
        arrival = icnt.send(0, 8, priority=True)
        assert arrival == 1  # jumps the backlog

    def test_best_effort_queues_behind_priority(self):
        icnt = Interconnect(bytes_per_cycle=8, latency=0)
        icnt.send(0, 800, priority=True)  # 100 cycles of priority traffic
        arrival = icnt.send(0, 8)
        assert arrival >= 100

    def test_priority_queues_behind_priority(self):
        icnt = Interconnect(bytes_per_cycle=8, latency=0)
        a = icnt.send(0, 80, priority=True)
        b = icnt.send(0, 80, priority=True)
        assert b == a + 10

    def test_all_traffic_counted_in_utilization(self):
        icnt = Interconnect(bytes_per_cycle=8, latency=0, window=100)
        icnt.send(0, 400, priority=True)
        icnt.send(0, 400)
        assert icnt.bytes_transferred == 800


class TestInterconnectMixedTraffic:
    """Interleaved demand + prefetch streams: the virtual-channel
    invariants the sanitizer audits at cadence must hold after *every*
    send, not just in the two-send corner cases above."""

    def _mixed_sends(self, seed):
        import random

        rng = random.Random(seed)
        now = 0
        for _ in range(400):
            now += rng.randrange(0, 5)
            yield now, rng.randrange(8, 512), rng.random() < 0.3

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_priority_horizon_never_passes_combined(self, seed):
        icnt = Interconnect(bytes_per_cycle=32, latency=4)
        for now, nbytes, priority in self._mixed_sends(seed):
            icnt.send(now, nbytes, priority=priority)
            assert icnt.priority_next_free <= icnt.next_free

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_horizons_monotonic_under_mixed_traffic(self, seed):
        icnt = Interconnect(bytes_per_cycle=32, latency=4)
        prev = icnt.snapshot()
        for now, nbytes, priority in self._mixed_sends(seed):
            icnt.send(now, nbytes, priority=priority)
            snap = icnt.snapshot()
            assert snap["next_free"] >= prev["next_free"]
            assert snap["priority_next_free"] >= prev["priority_next_free"]
            assert snap["bytes_transferred"] > prev["bytes_transferred"]
            prev = snap

    def test_demand_latency_independent_of_prefetch_load(self):
        # the same demand stream, with and without a heavy best-effort
        # stream interleaved: demand arrivals must be identical
        quiet = Interconnect(bytes_per_cycle=32, latency=4)
        busy = Interconnect(bytes_per_cycle=32, latency=4)
        arrivals_quiet, arrivals_busy = [], []
        for step in range(100):
            now = step * 3
            busy.send(now, 256)  # prefetch pressure on the busy channel
            arrivals_quiet.append(quiet.send(now, 64, priority=True))
            arrivals_busy.append(busy.send(now, 64, priority=True))
        assert arrivals_busy == arrivals_quiet

    def test_utilization_bounded_under_saturation(self):
        icnt = Interconnect(bytes_per_cycle=8, latency=0, window=64)
        for now, nbytes, priority in self._mixed_sends(3):
            icnt.send(now, nbytes, priority=priority)
            assert 0.0 <= icnt.measured_utilization(now) <= 1.0


class TestDRAMPriority:
    def _dram(self):
        return DRAM(DRAMTimings(), channels=1, banks_per_channel=1,
                    row_bytes=2048, clock_ratio=0.5, line_bytes=128)

    def test_demand_not_blocked_by_future_prefetch_activate(self):
        dram = self._dram()
        # a best-effort prefetch scheduled far in the future (its queueing
        # starts late) opens a row and sets activate state
        dram.access(1 << 20, now=5_000, priority=False)
        # demand arriving *now* must not wait for the future activate
        done = dram.access(2 << 20, now=0, priority=True)
        assert done < 1_000

    def test_priority_respects_own_trc(self):
        dram = self._dram()
        first = dram.access(1 << 20, now=0, priority=True)
        second = dram.access(2 << 20, now=0, priority=True)
        assert second > first  # same bank, back-to-back activates spaced

    def test_best_effort_queues_behind_everything(self):
        dram = self._dram()
        dram.access(1 << 20, now=0, priority=True)
        late = dram.access(2 << 20, now=0, priority=False)
        fresh = self._dram().access(2 << 20, now=0, priority=False)
        assert late >= fresh


class TestL2Priority:
    def _l2(self):
        dram = DRAM(DRAMTimings(), 2, 4, 2048, 0.5, 128)
        config = CacheConfig(size_bytes=16 * 1024, assoc=8, line_bytes=128,
                             latency=100)
        return L2Cache(config, banks=4, dram=dram)

    def test_priority_bank_slot_jumps_best_effort(self):
        l2 = self._l2()
        for i in range(10):
            l2.access(i * 4 * 128, now=0, priority=False)  # bank 0 backlog
        fast = self._l2()
        unloaded = fast.access(40 * 128, now=0, priority=True)
        loaded = l2.access(40 * 128, now=0, priority=True)
        assert loaded <= unloaded + 200

    def test_demand_merge_promotes_inflight_prefetch(self):
        l2 = self._l2()
        l2.access(0, now=0, priority=False)  # prefetch in flight
        merged = l2.access(0, now=1, priority=True)
        # promoted: no later than roughly an unloaded access
        assert merged <= 1 + l2.config.latency + 50


class TestL1Promotion:
    def _l1(self):
        config = GPUConfig.scaled()
        dram = DRAM(config.dram, 2, 4, 2048, 0.5, 128)
        l2 = L2Cache(config.l2, 4, dram)
        stats = SimStats()
        l1 = UnifiedL1Cache(
            config,
            Interconnect(config.icnt_bytes_per_cycle, config.icnt_latency),
            Interconnect(config.icnt_bytes_per_cycle, config.icnt_latency),
            l2, stats, mode=StorageMode.COUPLED,
        )
        return l1, stats

    def test_demand_merge_into_late_prefetch_is_bounded(self):
        l1, stats = self._l1()
        # saturate the best-effort response channel so the prefetch is late
        l1._icnt_resp.send(0, 50_000)
        assert l1.prefetch(0, now=0)
        outcome, ready = l1.demand_load(0, now=10)
        assert outcome is L1Outcome.RESERVED
        assert ready - 10 <= l1._unloaded_round_trip() + 1

    def test_unloaded_round_trip_positive(self):
        l1, _ = self._l1()
        assert l1._unloaded_round_trip() > l1.config.l2.latency
