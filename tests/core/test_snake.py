"""SnakePrefetcher behaviour on hand-built access streams."""

from repro.core.snake import SnakePrefetcher
from repro.prefetch.base import AccessEvent


def ev(warp, pc, addr, now=0, cta=0):
    return AccessEvent(warp_id=warp, cta_id=cta, pc=pc, base_addr=addr,
                       line_addr=addr - addr % 128, now=now,
                       thread_stride=4)


def run_chain(snake, warp, base, links, rounds=1):
    """Feed `rounds` traversals of a (pc, offset) chain; returns the last
    observe() result."""
    out = []
    addr = base
    for r in range(rounds):
        for pc, offset in links:
            out = snake.observe(ev(warp, pc, addr + offset))
        addr += links[-1][1]  # advance by the loop stride
    return out


CHAIN = [(0x10, 0), (0x20, 400), (0x30, 40400)]


class TestChainDetection:
    def test_three_warps_promote_chain(self):
        snake = SnakePrefetcher(use_intra=False, use_inter_warp=False)
        for warp in range(3):
            for pc, offset in CHAIN:
                snake.observe(ev(warp, pc, 10_000 * warp + offset))
        # a fourth warp at PC 0x10 must now get chain predictions
        requests = snake.observe(ev(3, 0x10, 500_000))
        addrs = [r.base_addr for r in requests]
        assert 500_000 + 400 in addrs
        assert 500_000 + 40_400 in addrs

    def test_untrained_chain_is_silent(self):
        snake = SnakePrefetcher(use_intra=False, use_inter_warp=False)
        for pc, offset in CHAIN:
            snake.observe(ev(0, pc, offset))
        assert snake.observe(ev(0, 0x10, 100_000)) == []

    def test_chain_depth_bounded(self):
        snake = SnakePrefetcher(
            max_chain_depth=2, use_intra=False, use_inter_warp=False
        )
        for warp in range(3):
            for pc, offset in CHAIN:
                snake.observe(ev(warp, pc, 10_000 * warp + offset))
        requests = snake.observe(ev(3, 0x10, 500_000))
        assert len(requests) <= 2

    def test_trained_property(self):
        snake = SnakePrefetcher()
        assert not snake.trained
        for warp in range(3):
            for pc, offset in CHAIN:
                snake.observe(ev(warp, pc, 10_000 * warp + offset))
        assert snake.trained


class TestVerification:
    def test_warp_with_new_behaviour_is_removed(self):
        snake = SnakePrefetcher(use_intra=False, use_inter_warp=False)
        for warp in range(3):
            snake.observe(ev(warp, 0x10, 10_000 * warp))
            snake.observe(ev(warp, 0x20, 10_000 * warp + 400))
        entry = snake.tail.find(0x10, 0x20, 400)[0]
        assert entry.has_warp(1)
        # warp 1 now goes 0x10 -> 0x20 with a different stride
        snake.observe(ev(1, 0x10, 90_000))
        snake.observe(ev(1, 0x20, 90_000 + 888))
        assert not entry.has_warp(1)


class TestIntraWarp:
    def test_loop_stride_prefetched(self):
        snake = SnakePrefetcher(use_chains=False, use_inter_warp=False,
                                intra_degree=1)
        requests = []
        for warp in range(3):
            for i in range(3):
                requests = snake.observe(ev(warp, 0x10, warp * 100_000 + i * 4096))
        assert [r.base_addr for r in requests] == [2 * 100_000 + 2 * 4096 + 4096]

    def test_degree_extends_reach(self):
        snake = SnakePrefetcher(use_chains=False, use_inter_warp=False,
                                intra_degree=3)
        for warp in range(3):
            for i in range(3):
                requests = snake.observe(ev(warp, 0x10, warp * 100_000 + i * 4096))
        assert len(requests) == 3


class TestInterWarp:
    def test_fixed_warp_stride_prefetches_future_warps(self):
        snake = SnakePrefetcher(use_chains=False, use_intra=False,
                                inter_warp_degree=2)
        requests = []
        for warp in range(4):
            requests = snake.observe(ev(warp, 0x10, warp * 4096))
        addrs = [r.base_addr for r in requests]
        assert 4 * 4096 in addrs and 5 * 4096 in addrs


class TestFlags:
    def test_s_snake_covers_loops_via_self_link_chains(self):
        # A consecutive same-PC loop forms a (pc -> pc) chain link, so even
        # chains-only s-Snake predicts the next iteration (§3.1, case 1).
        snake = SnakePrefetcher(use_intra=False, use_inter_warp=False)
        for warp in range(4):
            for i in range(4):
                requests = snake.observe(ev(warp, 0x10, warp * 100_000 + i * 4096))
        assert requests and requests[0].base_addr == 3 * 100_000 + 4 * 4096

    def test_all_sources_disabled_is_silent(self):
        snake = SnakePrefetcher(
            use_chains=False, use_intra=False, use_inter_warp=False
        )
        for warp in range(4):
            for i in range(4):
                requests = snake.observe(ev(warp, 0x10, warp * 100_000 + i * 4096))
        assert requests == []

    def test_requests_deduplicated(self):
        snake = SnakePrefetcher()
        for warp in range(4):
            for i in range(3):
                requests = snake.observe(ev(warp, 0x10, warp * 4096 + i * 4096))
        addrs = [r.base_addr for r in requests]
        assert len(addrs) == len(set(addrs))

    def test_table_accesses_counted(self):
        snake = SnakePrefetcher()
        snake.observe(ev(0, 0x10, 0))
        assert snake.table_accesses() > 0
