"""Head table (§3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.head_table import HeadTable, Transition


class TestUpdate:
    def test_first_load_yields_no_transition(self):
        head = HeadTable()
        assert head.update(0, pc=0x10, addr=1000) is None

    def test_second_load_yields_transition(self):
        head = HeadTable()
        head.update(0, 0x10, 1000)
        transition = head.update(0, 0x20, 1400)
        assert transition == Transition(warp_id=0, pc1=0x10, pc2=0x20, stride=400)

    def test_negative_stride(self):
        head = HeadTable()
        head.update(0, 0x10, 1000)
        assert head.update(0, 0x20, 600).stride == -400

    def test_warps_tracked_independently(self):
        head = HeadTable()
        head.update(0, 0x10, 1000)
        head.update(1, 0x10, 9000)
        assert head.update(0, 0x20, 1100).stride == 100
        assert head.update(1, 0x20, 9200).stride == 200

    def test_lookup(self):
        head = HeadTable()
        head.update(3, 0x10, 1000)
        assert head.lookup(3) == (0x10, 1000)
        assert head.lookup(4) is None


class TestCapacity:
    def test_lru_warp_evicted(self):
        head = HeadTable(capacity=2)
        head.update(0, 0x10, 0)
        head.update(1, 0x10, 0)
        head.update(2, 0x10, 0)  # evicts warp 0
        assert head.lookup(0) is None
        assert head.update(0, 0x20, 100) is None  # history lost

    def test_update_refreshes_lru(self):
        head = HeadTable(capacity=2)
        head.update(0, 0x10, 0)
        head.update(1, 0x10, 0)
        head.update(0, 0x20, 4)  # warp 0 becomes MRU
        head.update(2, 0x10, 0)  # evicts warp 1
        assert head.lookup(0) is not None
        assert head.lookup(1) is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            HeadTable(capacity=0)

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 100)),
                    min_size=1, max_size=200))
    def test_size_bounded(self, updates):
        head = HeadTable(capacity=4)
        for warp, addr in updates:
            head.update(warp, 0x10, addr * 4)
        assert len(head) <= 4

    def test_accesses_counted(self):
        head = HeadTable()
        head.update(0, 0x10, 0)
        head.update(0, 0x20, 4)
        assert head.accesses == 2
