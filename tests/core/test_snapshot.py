"""Snapshot/restore round trips for the Head/Tail tables and the full
SnakePrefetcher (the durability substrate of the repro.serve journal).

The contract under test (docs/SERVING.md):

* ``restore(snapshot(x))`` reproduces *exact* state — the next snapshot is
  byte-identical once serialized to canonical JSON;
* restored learners are behaviourally equivalent — feeding the original
  and the restored instance the same subsequent events yields the same
  predictions and the same final snapshots;
* snapshots are JSON-safe (round-trip through ``json.dumps``/``loads``).
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.head_table import HeadTable
from repro.core.snake import SnakePrefetcher
from repro.core.tail_table import TailTable
from repro.prefetch.base import AccessEvent
from repro.prefetch.stride import ConsensusTracker


def canonical(snapshot):
    """Byte-identical equality is asserted on this serialization."""
    return json.dumps(snapshot, sort_keys=True).encode("utf-8")


def json_round_trip(snapshot):
    return json.loads(json.dumps(snapshot))


def ev(warp, pc, addr, app=0, divergent=False):
    return AccessEvent(warp_id=warp, cta_id=0, pc=pc, base_addr=addr,
                       line_addr=addr - addr % 128, now=0, thread_stride=4,
                       app_id=app, divergent=divergent)


def random_events(seed, count=200, apps=1):
    """A deterministic mixed stream: chains, strides, and noise."""
    rng = random.Random(seed)
    events = []
    for i in range(count):
        app = rng.randrange(apps)
        warp = rng.randrange(8)
        pc = rng.choice([0x10, 0x20, 0x30, 0x40, 0x50])
        addr = rng.randrange(0, 1 << 24) * 4
        events.append(ev(warp, pc, addr, app=app,
                         divergent=rng.random() < 0.05))
    return events


class TestHeadTableSnapshot:
    def test_empty_round_trip(self):
        table = HeadTable(capacity=4)
        restored = HeadTable.restore(json_round_trip(table.snapshot()))
        assert canonical(restored.snapshot()) == canonical(table.snapshot())

    def test_round_trip_preserves_rows_and_lru(self):
        table = HeadTable(capacity=3)
        for warp, pc, addr in [(0, 1, 100), (1, 2, 200), (2, 3, 300),
                               (0, 4, 400), (3, 5, 500)]:
            table.update(warp, pc, addr)
        restored = HeadTable.restore(json_round_trip(table.snapshot()))
        assert canonical(restored.snapshot()) == canonical(table.snapshot())
        assert len(restored) == len(table)
        assert restored.accesses == table.accesses
        # LRU order survives: the same next update evicts the same victim.
        table.update(9, 9, 900)
        restored.update(9, 9, 900)
        assert canonical(restored.snapshot()) == canonical(table.snapshot())

    def test_version_mismatch_rejected(self):
        data = HeadTable().snapshot()
        data["v"] = 999
        with pytest.raises(ValueError):
            HeadTable.restore(data)

    def test_overfull_snapshot_rejected(self):
        data = HeadTable(capacity=1).snapshot()
        data["rows"] = [[0, 1, 2], [1, 2, 3]]
        with pytest.raises(ValueError):
            HeadTable.restore(data)


class TestTailTableSnapshot:
    def _stocked(self):
        table = TailTable(capacity=4, train_threshold=2)
        for warp in range(3):
            table.record(warp, 0x10, 0x20, 400)
        table.record_intra(0, 0x10, 64)
        table.record_intra(1, 0x10, 64)
        table.record_inter_warp(0x10, 4096)
        table.record(5, 0x20, 0x30, -32)
        return table

    def test_round_trip_byte_identical(self):
        table = self._stocked()
        restored = TailTable.restore(json_round_trip(table.snapshot()))
        assert canonical(restored.snapshot()) == canonical(table.snapshot())

    def test_round_trip_preserves_behaviour(self):
        table = self._stocked()
        restored = TailTable.restore(json_round_trip(table.snapshot()))
        for t in (table, restored):
            t.record(6, 0x10, 0x20, 400)
            t.record_intra(2, 0x10, 64)
        assert canonical(restored.snapshot()) == canonical(table.snapshot())
        assert [e.pc1 for e in restored.entries()] == [
            e.pc1 for e in table.entries()
        ]

    def test_restored_table_is_structurally_clean(self):
        restored = TailTable.restore(json_round_trip(self._stocked().snapshot()))
        assert restored.structural_violations() == []

    def test_version_mismatch_rejected(self):
        data = TailTable().snapshot()
        data["v"] = 0
        with pytest.raises(ValueError):
            TailTable.restore(data)

    def test_overfull_snapshot_rejected(self):
        table = TailTable(capacity=2)
        table.record(0, 1, 2, 4)
        data = table.snapshot()
        data["entries"] = data["entries"] * 3
        with pytest.raises(ValueError):
            TailTable.restore(data)


class TestConsensusTrackerSnapshot:
    def test_round_trip(self):
        tracker = ConsensusTracker(threshold=3)
        for voter in range(3):
            tracker.vote(voter, 512)
        tracker.vote(7, -64)
        restored = ConsensusTracker.restore(json_round_trip(tracker.snapshot()))
        assert restored.trained_stride == tracker.trained_stride == 512
        assert canonical(restored.snapshot()) == canonical(tracker.snapshot())
        # behavioural equivalence on further votes
        assert tracker.vote(8, -64) == restored.vote(8, -64)


class TestSnakeSnapshot:
    def test_empty_round_trip(self):
        snake = SnakePrefetcher()
        restored = SnakePrefetcher.restore(json_round_trip(snake.snapshot()))
        assert canonical(restored.snapshot()) == canonical(snake.snapshot())

    @pytest.mark.parametrize("per_app", [False, True])
    def test_round_trip_mid_stream(self, per_app):
        snake = SnakePrefetcher(per_app=per_app)
        events = random_events(seed=7, count=300, apps=2 if per_app else 1)
        for event in events[:150]:
            snake.observe(event)
        snapshot = json_round_trip(snake.snapshot())
        restored = SnakePrefetcher.restore(snapshot)
        assert canonical(restored.snapshot()) == canonical(snake.snapshot())
        # behavioural equivalence: the tail of the stream produces the
        # same predictions and the same final state on both instances.
        for event in events[150:]:
            assert [r.base_addr for r in snake.observe(event)] == [
                r.base_addr for r in restored.observe(event)
            ]
        assert canonical(restored.snapshot()) == canonical(snake.snapshot())

    def test_depth_limit_survives(self):
        snake = SnakePrefetcher()
        snake.set_depth_limit(2)
        restored = SnakePrefetcher.restore(snake.snapshot())
        assert restored._depth_limit == 2

    def test_app_zero_required(self):
        data = SnakePrefetcher().snapshot()
        data["app_tables"] = []
        with pytest.raises(ValueError):
            SnakePrefetcher.restore(data)

    def test_version_mismatch_rejected(self):
        data = SnakePrefetcher().snapshot()
        data["v"] = 2
        with pytest.raises(ValueError):
            SnakePrefetcher.restore(data)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1 << 16), cut=st.integers(0, 120))
    def test_property_snapshot_cut_anywhere(self, seed, cut):
        """Snapshotting at *any* point of *any* stream and restoring must
        reproduce the stream's final state exactly."""
        events = random_events(seed=seed, count=120)
        straight = SnakePrefetcher()
        for event in events:
            straight.observe(event)
        cut_run = SnakePrefetcher()
        for event in events[:cut]:
            cut_run.observe(event)
        resumed = SnakePrefetcher.restore(json_round_trip(cut_run.snapshot()))
        for event in events[cut:]:
            resumed.observe(event)
        assert canonical(resumed.snapshot()) == canonical(straight.snapshot())
