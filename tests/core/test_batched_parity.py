"""Property tests pinning the batched hot path to its scalar oracles.

The batched lanes (``HeadTable.update_batch``, ``TailTable.walk_raw``
under ``SnakePrefetcher(batched=True)``, ``observe_raw`` /
``observe_batch``, and the SM/L1 ``prefetch_trigger`` issue path behind
``GPUConfig.batched_issue``) are pure performance refactors: every one
retains its scalar predecessor as a differential oracle, and these
tests are the pin — hypothesis-generated access streams, seeds and
chain shapes (including forced Tail evictions and the fault injector's
in-field corruption modes) must produce identical predictions, table
state and statistics on both paths.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.head_table import HeadTable
from repro.core.snake import SnakePrefetcher
from repro.core.tail_table import TrainState
from repro.gpusim import GPUConfig, simulate
from repro.gpusim.trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace, renumber_warps
from repro.prefetch.base import AccessEvent


def _stream(seed, length, pcs, warps, chain_shape):
    """A deterministic access-event stream.

    ``chain_shape`` picks the pc ordering: ``loop`` sweeps pcs cyclically
    per warp (stable chains), ``churn`` picks pcs at random (constant
    Tail eviction pressure on a small table), ``mixed`` alternates and
    sprinkles divergent accesses.
    """
    rng = random.Random(seed)
    pc_list = [0x100 + 4 * i for i in range(pcs)]
    strides = {pc: 32 * (1 + i % 5) for i, pc in enumerate(pc_list)}
    cursors = {}
    events = []
    for k in range(length):
        warp = rng.randrange(warps)
        if chain_shape == "loop" or (chain_shape == "mixed" and k % 2 == 0):
            pc = pc_list[(k // warps) % len(pc_list)]
        else:
            pc = pc_list[rng.randrange(len(pc_list))]
        key = (warp, pc)
        addr = cursors.get(key, 0x4000 + warp * 0x1000 + pc * 8)
        cursors[key] = addr + strides[pc]
        events.append(AccessEvent(
            warp_id=warp, cta_id=0, pc=pc, base_addr=addr, line_addr=addr,
            now=k,
            divergent=chain_shape == "mixed" and rng.random() < 0.1,
        ))
    return events


def _make_pair(tail_entries, depth):
    """(batched, scalar-oracle) learners with otherwise identical knobs."""
    kwargs = dict(
        head_entries=8, tail_entries=tail_entries, train_threshold=2,
        max_chain_depth=depth,
    )
    return (
        SnakePrefetcher(batched=True, **kwargs),
        SnakePrefetcher(batched=False, **kwargs),
    )


def _table_state(learner):
    return [
        (app_id, head.snapshot(), tail.snapshot())
        for app_id, head, tail in learner.tables()
    ]


STREAMS = st.tuples(
    st.integers(0, 2**31),                      # seed
    st.integers(32, 300),                        # length
    st.integers(2, 10),                          # distinct pcs
    st.integers(1, 12),                          # warps
    st.sampled_from(["loop", "churn", "mixed"]),
)


class TestLearnerParity:
    @settings(max_examples=40, deadline=None)
    @given(params=STREAMS, tail_entries=st.integers(2, 24),
           depth=st.integers(1, 12))
    def test_observe_matches_scalar_oracle(self, params, tail_entries, depth):
        """batched=True vs batched=False: identical predictions, lookup
        accounting and table state — small Tail capacities force eviction
        interleavings, large ones cross the vectorized-walk threshold."""
        events = _stream(*params)
        batched, scalar = _make_pair(tail_entries, depth)
        for event in events:
            got = [(r.base_addr, r.depth) for r in batched.observe(event)]
            want = [(r.base_addr, r.depth) for r in scalar.observe(event)]
            assert got == want
        assert batched.tail.lookups == scalar.tail.lookups
        assert _table_state(batched) == _table_state(scalar)

    @settings(max_examples=25, deadline=None)
    @given(params=STREAMS, tail_entries=st.integers(2, 24))
    def test_observe_raw_matches_observe(self, params, tail_entries):
        """The raw (base_addr, depth) lane is the boxed lane, unboxed."""
        events = _stream(*params)
        raw, scalar = _make_pair(tail_entries, 8)
        for event in events:
            pairs = raw.observe_raw(event)
            want = [(r.base_addr, r.depth) for r in scalar.observe(event)]
            assert pairs == want
        assert _table_state(raw) == _table_state(scalar)

    @settings(max_examples=25, deadline=None)
    @given(params=STREAMS, tail_entries=st.integers(2, 24),
           chunks=st.integers(0, 2**31))
    def test_observe_batch_matches_sequential(self, params, tail_entries,
                                              chunks):
        """Randomly chunked observe_batch == one observe per event."""
        events = _stream(*params)
        grouped, sequential = _make_pair(tail_entries, 8)
        rng = random.Random(chunks)
        want = [
            [(r.base_addr, r.depth) for r in sequential.observe(e)]
            for e in events
        ]
        got = []
        i = 0
        while i < len(events):
            k = rng.randrange(1, 24)
            for requests in grouped.observe_batch(events[i:i + k]):
                got.append([(r.base_addr, r.depth) for r in requests])
            i += k
        assert got == want
        assert grouped.tail.lookups == sequential.tail.lookups
        assert _table_state(grouped) == _table_state(sequential)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31), capacity=st.integers(1, 12),
           chunks=st.integers(0, 2**31))
    def test_head_update_batch_matches_scalar(self, seed, capacity, chunks):
        """update_batch == N update calls: same transitions, same rows,
        LRU eviction included."""
        rng = random.Random(seed)
        n = rng.randrange(16, 200)
        warps = [rng.randrange(capacity + 4) for _ in range(n)]
        pcs = [0x10 * rng.randrange(6) for _ in range(n)]
        addrs = [rng.randrange(1 << 40) for _ in range(n)]
        one, batch = HeadTable(capacity), HeadTable(capacity)
        want = []
        for w, p, a in zip(warps, pcs, addrs):
            t = one.update(w, p, a)
            want.append(None if t is None else (t.pc1, t.stride))
        got = []
        i = 0
        while i < n:
            k = random.Random(chunks + i).randrange(1, 32)
            pc1s, strides, valid = batch.update_batch(
                warps[i:i + k], pcs[i:i + k], addrs[i:i + k]
            )
            for j in range(len(valid)):
                got.append(
                    (int(pc1s[j]), int(strides[j])) if valid[j] else None
                )
            i += k
        assert got == want
        assert one.snapshot() == batch.snapshot()
        assert one.accesses == batch.accesses

    @settings(max_examples=20, deadline=None)
    @given(params=STREAMS, tail_entries=st.integers(2, 20),
           fault_seed=st.integers(0, 2**31))
    def test_parity_survives_corruption_interleavings(self, params,
                                                      tail_entries,
                                                      fault_seed):
        """The fault injector's in-field Tail corruptions (stale stride,
        scrambled warp vector, spurious promotion), applied identically
        to both learners mid-stream, must not desynchronize the paths —
        the batched walk reads the same corrupted state the scalar CAM
        scan does."""
        events = _stream(*params)
        batched, scalar = _make_pair(tail_entries, 8)
        rng = random.Random(fault_seed)
        for event in events:
            if rng.random() < 0.08 and len(batched.tail):
                index = rng.randrange(len(batched.tail))
                mode = rng.randrange(3)
                scrambled = rng.getrandbits(64)
                for learner in (batched, scalar):
                    entry = learner.tail.entries()[index]
                    if mode == 0:
                        entry.inter_thread_stride *= 3
                    elif mode == 1:
                        entry.warp_vector = scrambled
                    else:
                        entry.t1 = TrainState.TRAINED
                    learner.tail.mark_dirty()
            got = [(r.base_addr, r.depth) for r in batched.observe(event)]
            want = [(r.base_addr, r.depth) for r in scalar.observe(event)]
            assert got == want
        assert _table_state(batched) == _table_state(scalar)

    @settings(max_examples=15, deadline=None)
    @given(params=STREAMS, tail_entries=st.integers(2, 24))
    def test_snapshot_roundtrip_preserves_batched_state(self, params,
                                                        tail_entries):
        """snapshot -> restore -> snapshot is byte-stable for the
        numpy-backed tables, and a restored learner continues the stream
        exactly like the original (both lanes)."""
        events = _stream(*params)
        half = len(events) // 2
        for batched in (True, False):
            learner = SnakePrefetcher(
                head_entries=8, tail_entries=tail_entries,
                train_threshold=2, batched=batched,
            )
            for event in events[:half]:
                learner.observe(event)
            image = learner.snapshot()
            clone = SnakePrefetcher.restore(image)
            assert clone.snapshot() == image
            for event in events[half:]:
                got = [(r.base_addr, r.depth) for r in clone.observe(event)]
                want = [(r.base_addr, r.depth)
                        for r in learner.observe(event)]
                assert got == want
            assert clone.snapshot() == learner.snapshot()


def _small_kernel(seed):
    """A compact two-CTA kernel mixing strided and chained loads."""
    rng = random.Random(seed)
    ctas = []
    for c in range(2):
        warps = []
        for w in range(rng.randrange(1, 4)):
            base = (c * 4 + w) * 8192 + (1 << 26)
            instrs = []
            for i in range(rng.randrange(2, 7)):
                instrs.append(WarpInstr(pc=0x10, op=Op.LOAD,
                                        base_addr=base + i * 512,
                                        thread_stride=4))
                instrs.append(WarpInstr(pc=0x20, op=Op.LOAD,
                                        base_addr=base + i * 512 + 4096,
                                        thread_stride=4))
                instrs.append(WarpInstr(pc=0x30, op=Op.ALU))
            warps.append(WarpTrace(warp_id=0, instrs=instrs))
        ctas.append(CTA(cta_id=c, warps=warps))
    renumber_warps(ctas)
    return KernelTrace(name="batched-parity", ctas=ctas)


class TestSimulatorFlagParity:
    """The end-to-end pin: flipping the batched-path config flags must
    leave every simulated statistic untouched — the scalar paths exist
    as oracles, not alternatives."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31),
           mech=st.sampled_from(["snake", "s-snake", "intra"]))
    def test_batched_flags_do_not_move_stats(self, seed, mech):
        kernel = _small_kernel(seed)
        reference = None
        for tables in (True, False):
            for issue in (True, False):
                config = GPUConfig().with_(
                    batched_tables=tables, batched_issue=issue
                )
                stats = simulate(kernel, prefetcher=mech, config=config)
                if reference is None:
                    reference = stats
                else:
                    assert stats == reference, (
                        "stats diverged with batched_tables=%s "
                        "batched_issue=%s" % (tables, issue)
                    )
