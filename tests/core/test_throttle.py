"""Throttling mechanism (§3.3)."""

import pytest

from repro.core.throttle import NullThrottle, Throttle


class FakeL1:
    """Minimal stand-in exposing the two space metrics the throttle reads."""

    def __init__(self, free=1.0, backlog=0.0):
        self.free = free
        self.backlog = backlog
        self.throttled_until = -1

    def free_space_fraction(self, now):
        return self.free

    def unused_prefetch_fraction(self, now):
        return self.backlog


class TestBandwidthTrigger:
    def test_allows_below_high_watermark(self):
        throttle = Throttle(bw_high=0.7, bw_low=0.5)
        assert throttle.allow(0, FakeL1(), utilization=0.6)

    def test_halts_at_high_watermark(self):
        throttle = Throttle(bw_high=0.7, bw_low=0.5)
        assert not throttle.allow(0, FakeL1(), utilization=0.75)
        assert throttle.bw_halts == 1

    def test_hysteresis_keeps_halted_until_low_watermark(self):
        throttle = Throttle(bw_high=0.7, bw_low=0.5)
        throttle.allow(0, FakeL1(), utilization=0.75)
        assert not throttle.allow(1, FakeL1(), utilization=0.6)
        assert throttle.allow(2, FakeL1(), utilization=0.4)

    def test_recovers_and_can_halt_again(self):
        throttle = Throttle(bw_high=0.7, bw_low=0.5)
        throttle.allow(0, FakeL1(), utilization=0.9)
        throttle.allow(1, FakeL1(), utilization=0.1)
        assert not throttle.allow(2, FakeL1(), utilization=0.9)
        assert throttle.bw_halts == 2


class TestSpaceTrigger:
    def test_full_cache_with_backlog_halts_for_interval(self):
        throttle = Throttle(interval=50)
        l1 = FakeL1(free=0.0, backlog=0.9)
        assert not throttle.allow(100, l1, utilization=0.0)
        assert throttle.space_halts == 1
        assert not throttle.allow(120, l1, utilization=0.0)  # inside window
        assert throttle.allow(150, FakeL1(free=0.5), utilization=0.0)

    def test_confines_l1_demand_side(self):
        throttle = Throttle(interval=50)
        l1 = FakeL1(free=0.0, backlog=0.9)
        throttle.allow(100, l1, utilization=0.0)
        assert l1.throttled_until == 150

    def test_full_cache_without_backlog_allows(self):
        """Space exhaustion alone is normal steady state; only a rotting
        prefetch backlog triggers the halt."""
        throttle = Throttle()
        assert throttle.allow(0, FakeL1(free=0.0, backlog=0.0), utilization=0.0)

    def test_free_cache_allows(self):
        throttle = Throttle()
        assert throttle.allow(0, FakeL1(free=0.9, backlog=0.9), utilization=0.0)


class TestValidation:
    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            Throttle(interval=-1)

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            Throttle(bw_high=0.4, bw_low=0.6)

    def test_rejects_bad_space_threshold(self):
        with pytest.raises(ValueError):
            Throttle(space_threshold=1.5)


class TestNullThrottle:
    def test_always_allows(self):
        throttle = NullThrottle()
        assert throttle.allow(0, FakeL1(free=0.0, backlog=1.0), utilization=1.0)
        assert throttle.space_halts == 0
