"""Tail table (§3.1): creation conditions, promotion, verification,
eviction policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tail_table import TailTable, TrainState


class TestRecordConditions:
    """Fig 12's three entry-creation conditions."""

    def test_new_pc1_creates_entry(self):
        tail = TailTable()
        entry = tail.record(0, pc1=0x10, pc2=0x20, stride=400)
        assert (entry.pc1, entry.pc2, entry.inter_thread_stride) == (0x10, 0x20, 400)
        assert len(tail) == 1

    def test_same_pc1_new_pc2_creates_entry(self):
        tail = TailTable()
        tail.record(0, 0x10, 0x20, 400)
        tail.record(0, 0x10, 0x30, 400)
        assert len(tail) == 2

    def test_stride_mismatch_creates_entry(self):
        tail = TailTable()
        tail.record(0, 0x10, 0x20, 400)
        tail.record(1, 0x10, 0x20, 800)
        assert len(tail) == 2

    def test_exact_match_reuses_entry(self):
        tail = TailTable()
        a = tail.record(0, 0x10, 0x20, 400)
        b = tail.record(1, 0x10, 0x20, 400)
        assert a is b
        assert len(tail) == 1


class TestPromotion:
    def test_promoted_after_three_warps(self):
        tail = TailTable(train_threshold=3)
        for warp in range(2):
            assert tail.record(warp, 0x10, 0x20, 400).t1 is TrainState.NOT_TRAINED
        assert tail.record(2, 0x10, 0x20, 400).t1 is TrainState.PROMOTED

    def test_same_warp_does_not_promote(self):
        tail = TailTable(train_threshold=3)
        for _ in range(10):
            entry = tail.record(5, 0x10, 0x20, 400)
        assert entry.t1 is TrainState.NOT_TRAINED

    def test_trained_after_further_confirmation(self):
        tail = TailTable(train_threshold=3)
        for warp in range(4):
            entry = tail.record(warp, 0x10, 0x20, 400)
        assert entry.t1 is TrainState.TRAINED

    def test_warp_vector_bits(self):
        tail = TailTable()
        entry = tail.record(0, 0x10, 0x20, 400)
        tail.record(5, 0x10, 0x20, 400)
        assert entry.has_warp(0) and entry.has_warp(5)
        assert not entry.has_warp(3)
        assert entry.popcount == 2


class TestVerification:
    """§3.2: a mismatching warp is removed and the entry demoted."""

    def test_changed_behaviour_clears_warp_bit(self):
        tail = TailTable()
        entry = tail.record(0, 0x10, 0x20, 400)
        tail.record(0, 0x10, 0x20, 999)  # same PCs, new stride
        assert not entry.has_warp(0)

    def test_empty_vector_demotes(self):
        tail = TailTable(train_threshold=1)
        entry = tail.record(0, 0x10, 0x20, 400)
        assert entry.t1.prefetchable
        tail.record(0, 0x10, 0x30, 123)  # warp 0 went elsewhere
        assert entry.t1 is TrainState.NOT_TRAINED

    def test_other_warps_keep_entry_trained(self):
        tail = TailTable(train_threshold=2)
        entry = tail.record(0, 0x10, 0x20, 400)
        tail.record(1, 0x10, 0x20, 400)
        tail.record(0, 0x10, 0x20, 999)
        assert entry.has_warp(1)
        assert entry.t1.prefetchable


class TestIntraWarp:
    def test_intra_stride_trains_with_three_warps(self):
        tail = TailTable(train_threshold=3)
        tail.record(0, 0x10, 0x20, 400)  # create the pc1=0x10 entry
        for warp in range(3):
            tail.record_intra(warp, 0x10, 4096)
        entry = tail.find(0x10)[0]
        assert entry.intra_stride == 4096
        assert entry.t2 is TrainState.TRAINED

    def test_self_entry_created_for_loop_pc(self):
        tail = TailTable()
        tail.record_intra(0, 0x50, 512)
        entries = tail.find(0x50)
        assert len(entries) == 1
        assert entries[0].pc2 == 0x50

    def test_majority_stride_wins(self):
        tail = TailTable(train_threshold=2)
        tail.record(0, 0x10, 0x20, 400)
        tail.record_intra(0, 0x10, 100)
        for warp in (1, 2, 3):
            tail.record_intra(warp, 0x10, 200)
        assert tail.find(0x10)[0].intra_stride == 200


class TestInterWarp:
    def test_installed_on_all_pc_entries(self):
        tail = TailTable()
        tail.record(0, 0x10, 0x20, 400)
        tail.record(0, 0x10, 0x30, 800)
        tail.record_inter_warp(0x10, 128)
        assert all(e.inter_warp_stride == 128 for e in tail.find(0x10))


class TestEviction:
    def test_capacity_respected(self):
        tail = TailTable(capacity=3)
        for i in range(10):
            tail.record(0, 0x10 + i, 0x20 + i, 400)
        assert len(tail) == 3
        assert tail.evictions == 7

    def test_lru_pop_keeps_popular_entry(self):
        """LRU+popcount: within the stale group, the well-confirmed entry
        survives and the single-warp one goes."""
        tail = TailTable(capacity=4, train_threshold=3, eviction="lru+pop")
        for warp in range(6):
            tail.record(warp, 0x10, 0x20, 400)  # popular entry
        tail.record(0, 0x30, 0x40, 100)  # singleton, same age region
        for i in range(2):
            tail.record(0, 0x50 + i * 16, 0x60, 100)  # fill to capacity
        tail.record(0, 0x90, 0xA0, 100)  # forces an eviction
        # the popular (0x10 -> 0x20) entry must still be there
        assert tail.find(0x10, 0x20, 400)

    def test_pop_only_evicts_fewest_ones(self):
        tail = TailTable(capacity=2, train_threshold=3, eviction="pop")
        for warp in range(5):
            tail.record(warp, 0x10, 0x20, 400)
        tail.record(0, 0x30, 0x40, 100)
        tail.record(1, 0x50, 0x60, 100)  # evicts the singleton 0x30 entry
        assert tail.find(0x10, 0x20, 400)
        assert not tail.find(0x30)

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            TailTable(eviction="random")

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TailTable(capacity=0)

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 20),
                              st.integers(0, 20), st.integers(-500, 500)),
                    min_size=1, max_size=200))
    def test_capacity_invariant(self, records):
        tail = TailTable(capacity=5)
        for warp, pc1, pc2, stride in records:
            tail.record(warp, pc1, pc2, stride)
        assert len(tail) <= 5


class TestChainNext:
    def test_finds_trained_link_for_warp(self):
        tail = TailTable(train_threshold=2)
        for warp in (0, 1):
            tail.record(warp, 0x10, 0x20, 400)
        entry = tail.chain_next(0x10, warp_id=0)
        assert entry is not None and entry.pc2 == 0x20

    def test_requires_warp_bit(self):
        tail = TailTable(train_threshold=2)
        for warp in (0, 1):
            tail.record(warp, 0x10, 0x20, 400)
        assert tail.chain_next(0x10, warp_id=7) is None

    def test_requires_training(self):
        tail = TailTable(train_threshold=3)
        tail.record(0, 0x10, 0x20, 400)
        assert tail.chain_next(0x10, warp_id=0) is None
