"""Multi-application mode and the throttle-controlled chain depth."""

from repro.core.snake import SnakePrefetcher
from repro.core.throttle import NullThrottle, Throttle
from repro.gpusim import GPUConfig
from repro.gpusim.gpu import GPU
from repro.gpusim.unified_cache import StorageMode
from repro.prefetch.base import AccessEvent
from repro.workloads import build_kernel


def ev(warp, pc, addr, app=0):
    return AccessEvent(warp_id=warp, cta_id=0, pc=pc, base_addr=addr,
                       line_addr=addr - addr % 128, now=0, thread_stride=4,
                       app_id=app)


class TestPerAppTables:
    def test_apps_do_not_share_chains(self):
        snake = SnakePrefetcher(per_app=True, use_intra=False,
                                use_inter_warp=False)
        # app 0 trains a chain
        for warp in range(3):
            snake.observe(ev(warp, 0x10, 10_000 * warp, app=0))
            snake.observe(ev(warp, 0x20, 10_000 * warp + 400, app=0))
        # app 1 never sees it
        assert snake.observe(ev(9, 0x10, 500_000, app=1)) == []
        # app 0 does
        assert snake.observe(ev(9, 0x10, 500_000, app=0))

    def test_shared_mode_mixes(self):
        snake = SnakePrefetcher(per_app=False, use_intra=False,
                                use_inter_warp=False)
        for warp in range(3):
            snake.observe(ev(warp, 0x10, 10_000 * warp, app=0))
            snake.observe(ev(warp, 0x20, 10_000 * warp + 400, app=0))
        assert snake.observe(ev(9, 0x10, 500_000, app=1))

    def test_trained_any_app(self):
        snake = SnakePrefetcher(per_app=True, use_intra=False,
                                use_inter_warp=False)
        assert not snake.trained
        for warp in range(3):
            snake.observe(ev(warp, 0x10, 10_000 * warp, app=2))
            snake.observe(ev(warp, 0x20, 10_000 * warp + 400, app=2))
        assert snake.trained

    def test_table_accesses_sum_apps(self):
        snake = SnakePrefetcher(per_app=True)
        snake.observe(ev(0, 0x10, 0, app=0))
        snake.observe(ev(0, 0x10, 0, app=1))
        assert snake.table_accesses() >= 2


class TestRunMany:
    def test_concurrent_kernels_complete(self):
        config = GPUConfig.scaled()
        kernels = [
            build_kernel("lps", scale=0.25, seed=1),
            build_kernel("lib", scale=0.25, seed=2),
        ]
        expected = sum(k.num_instrs for k in kernels)
        gpu = GPU(config=config)
        stats = gpu.run_many(kernels)
        assert stats.instructions == expected

    def test_ids_renumbered_globally(self):
        config = GPUConfig.scaled()
        k1 = build_kernel("lps", scale=0.25, seed=1)
        k2 = build_kernel("lps", scale=0.25, seed=1)
        gpu = GPU(config=config)
        gpu.run_many([k1, k2])
        ids = [w.warp_id for k in (k1, k2) for w in k.all_warps()]
        assert len(ids) == len(set(ids))

    def test_rejects_empty(self):
        import pytest

        with pytest.raises(ValueError):
            GPU(config=GPUConfig.scaled()).run_many([])


class TestDepthLimit:
    def test_set_depth_limit_bounds_chain(self):
        snake = SnakePrefetcher(use_intra=False, use_inter_warp=False,
                                max_chain_depth=8)
        chain = [(0x10, 0), (0x20, 400), (0x30, 800), (0x40, 1200)]
        for warp in range(3):
            for pc, off in chain:
                snake.observe(ev(warp, pc, 10_000 * warp + off))
        snake.set_depth_limit(1)
        shallow = snake.observe(ev(7, 0x10, 500_000))
        snake.set_depth_limit(8)
        deep = snake.observe(ev(7, 0x10, 500_000))
        assert len(deep) > len(shallow)

    def test_throttle_depth_schedule(self):
        throttle = Throttle(bw_high=0.7, bw_low=0.5)
        assert throttle.chain_depth_limit(0.1, 8) == 8
        assert throttle.chain_depth_limit(0.6, 8) == 4
        assert throttle.chain_depth_limit(0.9, 8) == 1

    def test_null_throttle_keeps_full_depth(self):
        assert NullThrottle().chain_depth_limit(0.99, 8) == 8
