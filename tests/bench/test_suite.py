"""The bench suite runner: measurement, payload writing, baseline
discovery, and the end-to-end CLI gate (on a tiny pinned case)."""

import json

import pytest

from repro.bench.schema import validate_payload
from repro.bench.suite import (
    CASES,
    BenchCase,
    find_baseline,
    load_payload,
    render_table,
    run_case,
    run_suite,
    write_payload,
)

#: tiny stand-in for the committed suite so tests stay fast
TINY = (
    BenchCase("tiny-lps-none", "lps", "none", 0.05),
    BenchCase("tiny-lps-snake", "lps", "snake", 0.05, quick=False),
)


class TestSuite:
    def test_quick_subset_is_nonempty_and_proper(self):
        quick = [c for c in CASES if c.quick]
        assert quick and len(quick) < len(CASES)

    def test_committed_cases_include_quickstart_pair(self):
        names = {c.name for c in CASES}
        assert {"quickstart-none", "quickstart-snake"} <= names

    def test_run_case_measures_both_loops(self):
        result = run_case(TINY[0])
        assert result["stats_match"] is True
        assert result["cycles"] > 0
        assert result["wall_s"] > 0 and result["legacy_wall_s"] > 0
        assert result["speedup_vs_legacy"] == pytest.approx(
            result["legacy_wall_s"] / result["wall_s"], rel=0.02
        )

    def test_run_case_legacy_primary_skips_reference(self):
        result = run_case(TINY[0], loop="legacy")
        assert result["speedup_vs_legacy"] == 1.0

    def test_run_case_rejects_unknown_loop(self):
        with pytest.raises(ValueError):
            run_case(TINY[0], loop="warp")

    def test_run_suite_payload_is_schema_valid(self):
        payload = run_suite(cases=TINY, generated="2026-01-01")
        assert validate_payload(payload) == []
        assert payload["generated"] == "2026-01-01"
        assert len(payload["cases"]) == 2
        assert payload["peak_rss_mb"] > 0

    def test_run_suite_quick_filters_cases(self):
        payload = run_suite(cases=TINY, quick=True, generated="2026-01-01")
        assert [c["name"] for c in payload["cases"]] == ["tiny-lps-none"]
        assert payload["quick"] is True

    def test_render_table_mentions_every_case(self):
        payload = run_suite(cases=TINY, generated="2026-01-01")
        table = render_table(payload)
        for case in TINY:
            assert case.name in table


class TestPayloadIO:
    def test_write_and_load_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        payload = run_suite(cases=TINY[:1], generated="2026-01-01")
        path = write_payload(payload)
        assert path.name == "BENCH_2026-01-01.json"
        assert load_payload(str(path)) == payload

    def test_load_rejects_invalid_payload(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        with pytest.raises(ValueError):
            load_payload(str(bad))

    def test_find_baseline_picks_newest_and_skips_excluded(self, tmp_path):
        old = tmp_path / "BENCH_2026-01-01.json"
        new = tmp_path / "BENCH_2026-02-01.json"
        old.write_text("{}")
        new.write_text("{}")
        assert find_baseline(str(tmp_path)) == new
        assert find_baseline(str(tmp_path), exclude=new) == old
        assert find_baseline(str(tmp_path / "empty")) is None


class TestCLI:
    def test_bench_command_end_to_end_gate(self, tmp_path, monkeypatch, capsys):
        """`bench --check` against a baseline written by a previous run
        of the same tiny suite must pass the gate."""
        from repro.bench import suite as suite_mod
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(suite_mod, "CASES", TINY)
        baseline = run_suite(cases=TINY, generated="2026-01-01")
        write_payload(baseline)

        # loose tolerance: at this tiny scale the wall-clock ratio is
        # noisy, and this test gates plumbing, not performance
        rc = main([
            "bench", "--out", "BENCH_now.json", "--check", "--tolerance", "0.5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bench gate" in out and "passed" in out
        assert (tmp_path / "BENCH_now.json").exists()

    def test_bench_check_fails_without_baseline(self, tmp_path, monkeypatch, capsys):
        from repro.bench import suite as suite_mod
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(suite_mod, "CASES", TINY)
        rc = main(["bench", "--no-write", "--check"])
        assert rc == 2
        assert "no committed BENCH_" in capsys.readouterr().err
