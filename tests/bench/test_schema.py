"""BENCH payload schema validation and the regression gate."""

import copy

from repro.bench.schema import (
    BENCH_SCHEMA_VERSION,
    bench_filename,
    compare_payloads,
    validate_payload,
)


def make_case(name="quickstart-none", speedup=1.1, **over):
    wall = 0.5
    case = {
        "name": name,
        "app": "lps",
        "mechanism": "none",
        "scale": 1.0,
        "seed": 1,
        "cycles": 20000,
        "instructions": 9000,
        "wall_s": wall,
        "cycles_per_sec": 20000 / wall,
        "legacy_wall_s": round(wall * speedup, 4),
        "speedup_vs_legacy": speedup,
        "stats_match": True,
    }
    case.update(over)
    return case


def make_payload(cases=None, **over):
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated": "2026-08-08",
        "quick": False,
        "loop": "event",
        "host": {"python": "3.11.7", "platform": "linux", "cpu_count": 4},
        "peak_rss_mb": 40.0,
        "quickstart_wall_s": 0.9,
        "cases": cases if cases is not None else [make_case()],
    }
    payload.update(over)
    return payload


class TestValidate:
    def test_valid_payload(self):
        assert validate_payload(make_payload()) == []

    def test_missing_top_field(self):
        payload = make_payload()
        del payload["peak_rss_mb"]
        assert any("peak_rss_mb" in e for e in validate_payload(payload))

    def test_wrong_type(self):
        payload = make_payload(quickstart_wall_s="fast")
        assert any("quickstart_wall_s" in e for e in validate_payload(payload))

    def test_bool_is_not_an_int(self):
        payload = make_payload(cases=[make_case(cycles=True)])
        assert any("cycles" in e for e in validate_payload(payload))

    def test_unknown_schema_version(self):
        payload = make_payload(schema_version=BENCH_SCHEMA_VERSION + 1)
        assert any("schema_version" in e for e in validate_payload(payload))

    def test_unknown_loop(self):
        payload = make_payload(loop="warp")
        assert any("loop" in e for e in validate_payload(payload))

    def test_empty_cases(self):
        assert any("empty" in e for e in validate_payload(make_payload(cases=[])))

    def test_missing_case_field(self):
        case = make_case()
        del case["speedup_vs_legacy"]
        payload = make_payload(cases=[case])
        assert any("speedup_vs_legacy" in e for e in validate_payload(payload))

    def test_inconsistent_speedup(self):
        case = make_case()
        case["speedup_vs_legacy"] = 5.0  # legacy_wall_s says ~1.1
        payload = make_payload(cases=[case])
        assert any("inconsistent" in e for e in validate_payload(payload))

    def test_filename(self):
        assert bench_filename("2026-08-08") == "BENCH_2026-08-08.json"


class TestGate:
    def test_identical_payloads_pass(self):
        payload = make_payload()
        assert compare_payloads(payload, copy.deepcopy(payload)) == []

    def test_small_drop_within_tolerance_passes(self):
        current = make_payload(cases=[make_case(speedup=1.0)])
        baseline = make_payload(cases=[make_case(speedup=1.1)])
        assert compare_payloads(current, baseline, tolerance=0.15) == []

    def test_large_drop_fails(self):
        current = make_payload(cases=[make_case(speedup=0.8)])
        baseline = make_payload(cases=[make_case(speedup=1.1)])
        errors = compare_payloads(current, baseline, tolerance=0.15)
        assert any("speedup_vs_legacy" in e for e in errors)

    def test_stats_divergence_fails(self):
        case = make_case(stats_match=False)
        current = make_payload(cases=[case])
        errors = compare_payloads(current, make_payload())
        assert any("diverged" in e for e in errors)

    def test_no_overlap_fails(self):
        current = make_payload(cases=[make_case(name="new-case")])
        baseline = make_payload(cases=[make_case(name="old-case")])
        errors = compare_payloads(current, baseline)
        assert any("no case is comparable" in e for e in errors)

    def test_changed_pinned_parameters_fail(self):
        current = make_payload(cases=[make_case(scale=0.5, speedup=2.0)])
        errors = compare_payloads(current, make_payload())
        assert any("pinned parameters changed" in e for e in errors)

    def test_legacy_primary_payload_is_refused(self):
        current = make_payload(loop="legacy")
        errors = compare_payloads(current, make_payload())
        assert any("event loop" in e for e in errors)

    def test_invalid_baseline_reported(self):
        baseline = make_payload()
        del baseline["cases"]
        errors = compare_payloads(make_payload(), baseline)
        assert any("baseline payload invalid" in e for e in errors)
