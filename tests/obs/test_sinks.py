"""Built-in sinks: bucket boundaries, aggregation, Chrome-trace validity."""

import json

import pytest

from repro.obs.events import (
    CacheAccessEvent,
    ChainWalkEvent,
    DramRowActivateEvent,
    L2AccessEvent,
    PrefetchDropEvent,
    PrefetchFillEvent,
    PrefetchIssueEvent,
    PrefetchUseEvent,
    ThrottleEvent,
)
from repro.obs.sinks import ChromeTraceExporter, PCMetricsSink, TimeSeriesSampler


class TestTimeSeriesSampler:
    def test_bucket_boundaries(self):
        # cycle 999 -> bucket 0, cycle 1000 -> bucket 1 (half-open windows)
        sampler = TimeSeriesSampler(bucket_cycles=1000)
        sampler.accept(CacheAccessEvent(cycle=0, sm_id=0, outcome="hit"))
        sampler.accept(CacheAccessEvent(cycle=999, sm_id=0, outcome="hit"))
        sampler.accept(CacheAccessEvent(cycle=1000, sm_id=0, outcome="hit"))
        assert sampler.series("l1_hit") == [(0, 2), (1000, 1)]

    def test_series_is_dense_and_aligned(self):
        sampler = TimeSeriesSampler(bucket_cycles=10)
        sampler.accept(CacheAccessEvent(cycle=5, sm_id=0, outcome="miss"))
        sampler.accept(L2AccessEvent(cycle=35, sm_id=-1, hit=True))
        # l1_miss only touched bucket 0 but stretches to the global max.
        assert sampler.series("l1_miss") == [(0, 1), (10, 0), (20, 0), (30, 0)]
        assert sampler.series("l2_hit") == [(0, 0), (10, 0), (20, 0), (30, 1)]

    def test_counter_names(self):
        sampler = TimeSeriesSampler(bucket_cycles=100)
        sampler.accept(CacheAccessEvent(cycle=0, sm_id=0, outcome="reservation_fail"))
        sampler.accept(PrefetchIssueEvent(cycle=0, sm_id=0))
        sampler.accept(PrefetchFillEvent(cycle=0, sm_id=0))
        sampler.accept(PrefetchUseEvent(cycle=0, sm_id=0))
        sampler.accept(PrefetchDropEvent(cycle=0, sm_id=0, reason="duplicate"))
        sampler.accept(ThrottleEvent(cycle=0, sm_id=0, reason="space"))
        sampler.accept(ChainWalkEvent(cycle=0, sm_id=0))
        sampler.accept(DramRowActivateEvent(cycle=0, sm_id=-1))
        sampler.accept(L2AccessEvent(cycle=0, sm_id=-1, hit=False))
        assert sampler.counters() == [
            "chain_walk",
            "dram_row_activate",
            "l1_reservation_fail",
            "l2_miss",
            "prefetch_drop_duplicate",
            "prefetch_fill",
            "prefetch_issue",
            "prefetch_use",
            "throttle_block_space",
        ]
        assert all(sampler.total(name) == 1 for name in sampler.counters())

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(bucket_cycles=0)

    def test_render_summary_mentions_totals(self):
        sampler = TimeSeriesSampler(bucket_cycles=50)
        for cycle in (0, 10, 60):
            sampler.accept(ChainWalkEvent(cycle=cycle, sm_id=0))
        text = sampler.render_summary()
        assert "chain_walk" in text
        assert "3" in text


class TestPCMetricsSink:
    def test_cache_access_aggregation(self):
        sink = PCMetricsSink()
        sink.accept(
            CacheAccessEvent(
                cycle=0, sm_id=0, warp_id=3, pc=0x40, outcome="hit"
            )
        )
        sink.accept(
            CacheAccessEvent(
                cycle=1, sm_id=0, warp_id=3, pc=0x40, outcome="miss",
                covered=1, timely=1,
            )
        )
        sink.accept(
            CacheAccessEvent(
                cycle=2, sm_id=0, warp_id=4, pc=0x48,
                outcome="reservation_fail",
            )
        )
        pc = sink.per_pc[0x40]
        assert (pc.accesses, pc.hits, pc.misses) == (2, 1, 1)
        assert (pc.covered, pc.timely) == (1, 1)
        assert pc.hit_rate == 0.5
        assert sink.per_pc[0x48].reservation_fails == 1

        warp = sink.per_warp[3]
        assert (warp.accesses, warp.hits, warp.covered) == (2, 1, 1)
        assert warp.pcs == {0x40}
        assert sink.per_warp[4].pcs == {0x48}

    def test_prefetch_and_walk_attribution(self):
        sink = PCMetricsSink()
        sink.accept(PrefetchIssueEvent(cycle=0, sm_id=0, pc=0x10))
        sink.accept(PrefetchIssueEvent(cycle=1, sm_id=0, pc=0x10))
        sink.accept(ChainWalkEvent(cycle=2, sm_id=0, pc=0x10, depth=3, requests=2))
        sink.accept(ChainWalkEvent(cycle=3, sm_id=0, pc=0x10, depth=1, requests=1))
        pc = sink.per_pc[0x10]
        assert pc.prefetches_issued == 2
        assert pc.chain_walks == 2
        assert pc.max_chain_depth == 3  # max, not last

    def test_tables_render(self):
        sink = PCMetricsSink()
        sink.accept(
            CacheAccessEvent(cycle=0, sm_id=0, warp_id=0, pc=0x40, outcome="hit")
        )
        assert "0x40" in sink.render_pc_table()
        assert "warp" in sink.render_warp_table()


class TestChromeTraceExporter:
    @staticmethod
    def _populated():
        exporter = ChromeTraceExporter(bucket_cycles=100)
        exporter.accept(
            CacheAccessEvent(cycle=0, sm_id=0, warp_id=0, pc=0x40, outcome="hit")
        )
        exporter.accept(
            CacheAccessEvent(cycle=150, sm_id=0, warp_id=0, pc=0x40, outcome="miss")
        )
        exporter.accept(L2AccessEvent(cycle=10, sm_id=-1, hit=False))
        exporter.accept(
            ThrottleEvent(cycle=42, sm_id=1, reason="space", utilization=0.97)
        )
        return exporter

    def test_trace_structure(self):
        doc = self._populated().as_dict()
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "C", "i"}
        # pid 0 = shared L2/DRAM (sm_id -1), SMs shifted up by one.
        meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
        assert meta[0] == "shared L2/DRAM"
        assert meta[1] == "SM 0"
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["name"] == "throttle:space"
        assert instant["ts"] == 42
        assert instant["args"]["utilization"] == 0.97
        counter = next(
            e for e in events if e["ph"] == "C" and e["name"] == "L1 accesses"
        )
        assert counter["pid"] == 1

    def test_counter_bucketing(self):
        events = self._populated().trace_events()
        l1 = [e for e in events if e["ph"] == "C" and e["name"] == "L1 accesses"]
        by_ts = {e["ts"]: e["args"] for e in l1}
        assert by_ts[0] == {"hit": 1}
        assert by_ts[100] == {"miss": 1}

    def test_json_serialisable_and_export(self, tmp_path):
        exporter = self._populated()
        path = tmp_path / "run.trace.json"
        exporter.export(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["dropped_instants"] == 0
        assert all("pid" in e and "name" in e for e in doc["traceEvents"])

    def test_max_events_caps_instants(self):
        exporter = ChromeTraceExporter(bucket_cycles=100, max_events=2)
        for cycle in range(5):
            exporter.accept(
                ThrottleEvent(cycle=cycle, sm_id=0, reason="bandwidth")
            )
        assert exporter.dropped_instants == 3
        doc = exporter.as_dict()
        assert doc["otherData"]["dropped_instants"] == 3
        assert sum(1 for e in doc["traceEvents"] if e["ph"] == "i") == 2

    def test_instants_sorted_by_ts(self):
        exporter = ChromeTraceExporter(bucket_cycles=100)
        for cycle in (30, 10, 20):
            exporter.accept(ThrottleEvent(cycle=cycle, sm_id=0, reason="space"))
        instants = [e["ts"] for e in exporter.trace_events() if e["ph"] == "i"]
        assert instants == [10, 20, 30]
