"""Telemetry must be an observer: attaching the bus cannot change timing.

SimStats is a (nested) dataclass, so ``==`` compares every counter field,
including the embedded PrefetchStats — the strongest "bit-identical"
check available without serialising.
"""

import pytest

from repro.gpusim.config import GPUConfig
from repro.gpusim.gpu import GPU
from repro.obs import EventBus, PCMetricsSink, TimeSeriesSampler
from repro.prefetch import build_setup
from repro.workloads import build_kernel


def _run(app, mechanism, obs):
    config = GPUConfig.scaled()
    setup = build_setup(mechanism, config)
    gpu = GPU(
        config=setup.config,
        prefetcher_factory=setup.prefetcher_factory,
        throttle_factory=setup.throttle_factory,
        storage_mode=setup.storage_mode,
        obs=obs,
    )
    return gpu.run(build_kernel(app, scale=0.3, seed=11))


@pytest.mark.parametrize("mechanism", ["none", "snake"])
def test_stats_identical_with_telemetry_on_vs_off(mechanism):
    baseline = _run("lps", mechanism, obs=None)
    bus = EventBus([TimeSeriesSampler(bucket_cycles=500), PCMetricsSink()])
    traced = _run("lps", mechanism, obs=bus)
    assert traced == baseline  # dataclass equality: every counter field
    assert bus.events_emitted > 0  # the bus really was observing


def test_config_flag_enables_bus_without_changing_stats():
    baseline = _run("histo", "snake", obs=None)
    config = GPUConfig.scaled().with_(telemetry=True)
    setup = build_setup("snake", config)
    gpu = GPU(
        config=setup.config,
        prefetcher_factory=setup.prefetcher_factory,
        throttle_factory=setup.throttle_factory,
        storage_mode=setup.storage_mode,
    )
    assert gpu.obs.enabled is False  # no sinks attached yet -> fast path
    sink = PCMetricsSink()
    gpu.obs.attach(sink)
    stats = gpu.run(build_kernel("histo", scale=0.3, seed=11))
    assert stats == baseline
    assert sink.per_pc  # and the sink saw the run
