"""End-to-end telemetry runs: traced_run and the trace/profile CLI.

The acceptance bar: ``repro trace <app>`` emits a valid Chrome-trace JSON
and per-PC metrics for at least three workloads.
"""

import json

import pytest

from repro.cli import main
from repro.obs.runner import traced_run


@pytest.mark.parametrize("app", ["lps", "histo", "srad"])
def test_traced_run_produces_metrics_and_chrome_trace(app, tmp_path):
    result = traced_run(app, mechanism="snake", scale=0.3, seed=5)

    # Per-PC metrics exist and reconcile with the aggregate stats.
    assert result.pc_metrics.per_pc
    assert result.pc_metrics.per_warp
    total_accesses = sum(
        p.accesses for p in result.pc_metrics.per_pc.values()
    )
    assert total_accesses == result.stats.total_l1_accesses
    total_covered = sum(p.covered for p in result.pc_metrics.per_pc.values())
    assert total_covered == result.stats.prefetch.demand_covered

    # The time series saw L1 traffic.
    assert result.sampler.total("l1_hit") + result.sampler.total("l1_miss") > 0

    # Chrome trace is valid JSON with named, pid-tagged events.
    path = tmp_path / (app + ".trace.json")
    result.chrome.export(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert events
    assert all("name" in e and "ph" in e and "pid" in e for e in events)
    assert {e["ph"] for e in events} >= {"M", "C"}


def test_trace_cli_end_to_end(tmp_path, capsys):
    out = tmp_path / "lps.trace.json"
    code = main(["trace", "lps", "--scale", "0.3", "--out", str(out)])
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    printed = capsys.readouterr().out
    assert "per-PC metrics" in printed
    assert "chrome trace written" in printed


def test_profile_cli_end_to_end(capsys):
    code = main(["profile", "histo", "--scale", "0.3", "--top", "5"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "per-PC metrics" in printed
    assert "per-warp metrics" in printed


def test_trace_cli_unknown_app_fails_cleanly(capsys):
    code = main(["trace", "no-such-app", "--scale", "0.3"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_traced_run_without_chrome_sink():
    result = traced_run("lps", mechanism="none", scale=0.3, chrome=False)
    assert result.chrome is None
    assert result.pc_metrics.per_pc
