"""Event bus: fan-out, ordering, enable bookkeeping, null fast path."""

import pytest

from repro.obs.events import (
    CacheAccessEvent,
    ChainWalkEvent,
    DramRowActivateEvent,
    Event,
    EventBus,
    EventKind,
    L2AccessEvent,
    NULL_BUS,
    PrefetchDropEvent,
    PrefetchFillEvent,
    PrefetchIssueEvent,
    PrefetchUseEvent,
    Sink,
    ThrottleEvent,
)


class RecordingSink(Sink):
    def __init__(self):
        self.events = []
        self.closed = False

    def accept(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True


class TestEventBus:
    def test_empty_bus_is_disabled(self):
        assert EventBus().enabled is False

    def test_attach_enables_detach_disables(self):
        bus = EventBus()
        sink = bus.attach(RecordingSink())
        assert bus.enabled is True
        bus.detach(sink)
        assert bus.enabled is False

    def test_fanout_reaches_every_sink_in_order(self):
        a, b = RecordingSink(), RecordingSink()
        bus = EventBus([a, b])
        events = [
            PrefetchIssueEvent(cycle=i, sm_id=0, pc=0x10, line_addr=i * 128)
            for i in range(5)
        ]
        for event in events:
            bus.emit(event)
        assert a.events == events
        assert b.events == events
        assert bus.events_emitted == 5

    def test_emission_order_preserved(self):
        sink = RecordingSink()
        bus = EventBus([sink])
        bus.emit(CacheAccessEvent(cycle=3, sm_id=0))
        bus.emit(CacheAccessEvent(cycle=1, sm_id=0))  # bus does not sort
        assert [e.cycle for e in sink.events] == [3, 1]

    def test_close_closes_sinks(self):
        sink = RecordingSink()
        bus = EventBus([sink])
        bus.close()
        assert sink.closed

    def test_same_object_to_every_sink(self):
        a, b = RecordingSink(), RecordingSink()
        bus = EventBus([a, b])
        bus.emit(ThrottleEvent(cycle=0, sm_id=0))
        assert a.events[0] is b.events[0]


class TestNullBus:
    def test_disabled(self):
        assert NULL_BUS.enabled is False

    def test_emit_is_noop(self):
        NULL_BUS.emit(CacheAccessEvent(cycle=0, sm_id=0))  # must not raise

    def test_attach_rejected(self):
        with pytest.raises(RuntimeError):
            NULL_BUS.attach(RecordingSink())

    def test_close_is_noop(self):
        NULL_BUS.close()


class TestEventTypes:
    def test_kinds_are_unique(self):
        classes = [
            CacheAccessEvent,
            PrefetchIssueEvent,
            PrefetchFillEvent,
            PrefetchUseEvent,
            PrefetchDropEvent,
            ThrottleEvent,
            ChainWalkEvent,
            DramRowActivateEvent,
            L2AccessEvent,
        ]
        kinds = [cls.kind for cls in classes]
        assert len(set(kinds)) == len(kinds)
        assert all(isinstance(k, EventKind) for k in kinds)

    def test_header_fields(self):
        event = DramRowActivateEvent(cycle=7, sm_id=-1, channel=1, bank=2, row=3)
        assert isinstance(event, Event)
        assert (event.cycle, event.sm_id) == (7, -1)
        assert (event.channel, event.bank, event.row) == (1, 2, 3)

    def test_sink_base_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Sink().accept(CacheAccessEvent(cycle=0, sm_id=0))
