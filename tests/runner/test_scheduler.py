"""Scheduler semantics on a virtual clock: leases, stealing, recovery.

Everything here runs on :class:`InlineTransport` + :class:`VirtualClock`
with seeded fault injectors, so lease expiry, worker-lost requeue,
poison quarantine and duplicate suppression are exercised
deterministically with no real waiting.
"""

from repro.gpusim.faults import RunnerFaultInjector, RunnerFaultPlan
from repro.gpusim.stats import SimStats
from repro.obs.events import EventBus, EventKind, Sink
from repro.runner import Checkpoint, grid_specs, job_hash, shard_of
from repro.runner.scheduler import Scheduler
from repro.runner.transport import InlineTransport, VirtualClock

SCALE = 0.05


def make_specs(apps=("lps", "hotspot"), mechanisms=("none",)):
    return grid_specs(list(apps), list(mechanisms), scale=SCALE)


def run_scheduled(specs, *, injector=None, workers=2, lease_s=0.2,
                  retries=2, max_losses=3, **kwargs):
    transport = InlineTransport(workers=workers, faults=injector)
    return Scheduler(
        specs, transport=transport, clock=VirtualClock(), lease_s=lease_s,
        retries=retries, max_losses=max_losses, backoff_s=0.01,
        faults=injector, **kwargs,
    ).run()


class RecordingSink(Sink):
    def __init__(self):
        self.events = []

    def accept(self, event):
        self.events.append(event)


class TestPlainScheduling:
    def test_completes_a_grid(self):
        specs = make_specs(mechanisms=("none", "snake"))
        result = run_scheduled(specs)
        assert result.ok
        assert result.executed == len(specs)
        assert all(isinstance(v, SimStats) for v in result.results.values())

    def test_matches_fault_free_reference(self):
        specs = make_specs()
        reference = {k: v.to_json_dict()
                     for k, v in run_scheduled(specs).results.items()}
        again = {k: v.to_json_dict()
                 for k, v in run_scheduled(specs, workers=3).results.items()}
        assert reference == again

    def test_shards_are_deterministic(self):
        key = job_hash(make_specs()[0])
        assert shard_of(key, 4) == shard_of(key, 4)
        assert shard_of(key, 1) == 0
        assert 0 <= shard_of(key, 3) < 3

    def test_work_stealing_keeps_all_workers_busy(self):
        # Find specs that all shard onto worker 0 of 2: worker 1 can only
        # run them by stealing.
        specs = [
            s for s in make_specs(
                apps=("lps", "hotspot", "backprop", "histo"),
                mechanisms=("none", "snake"),
            )
            if shard_of(job_hash(s), 2) == 0
        ]
        assert len(specs) >= 2
        result = run_scheduled(specs, workers=2)
        assert result.ok
        assert result.steals >= 1


class TestCrashRecovery:
    def test_killed_worker_retries_until_budget(self):
        specs = make_specs(apps=("lps",))
        plan = RunnerFaultPlan.single("worker.kill", rate=1.0, max_per_job=3)
        result = run_scheduled(
            specs, injector=RunnerFaultInjector(plan), retries=2,
        )
        (failure,) = result.results.values()
        assert failure.failed and failure.kind == "JobCrash"
        assert "signal" in failure.message
        assert failure.attempts == 3  # retries=2 -> three launches, all killed

    def test_enough_retries_outlast_the_fault_cap(self):
        specs = make_specs(apps=("lps",))
        plan = RunnerFaultPlan.single("worker.kill", rate=1.0, max_per_job=2)
        result = run_scheduled(
            specs, injector=RunnerFaultInjector(plan), retries=2,
        )
        assert result.ok  # attempts 1-2 killed, attempt 3 clean

    def test_kill_at_claim_phase_runs_nothing(self, monkeypatch):
        self._kill_phase_case(monkeypatch, "claim")

    def test_kill_at_report_phase_loses_the_result(self, monkeypatch):
        self._kill_phase_case(monkeypatch, "report")

    def _kill_phase_case(self, monkeypatch, phase):
        monkeypatch.setattr(
            RunnerFaultInjector, "kill_phase", lambda self, key, attempt: phase
        )
        specs = make_specs(apps=("lps",))
        plan = RunnerFaultPlan.single("worker.kill", rate=1.0, max_per_job=1)
        result = run_scheduled(
            specs, injector=RunnerFaultInjector(plan), retries=2,
        )
        assert result.ok
        (stats,) = result.results.values()
        assert isinstance(stats, SimStats)


class TestLeaseRecovery:
    def stall_injector(self, max_per_job=1):
        plan = RunnerFaultPlan.single(
            "worker.heartbeat_stall", rate=1.0, max_per_job=max_per_job,
            delay_s=0.5,
        )
        return RunnerFaultInjector(plan)

    def test_stalled_worker_loses_its_lease_and_the_job_recovers(self):
        specs = make_specs(apps=("lps",))
        result = run_scheduled(
            specs, injector=self.stall_injector(), lease_s=0.2,
        )
        assert result.ok
        assert result.losses >= 1
        (stats,) = result.results.values()
        assert isinstance(stats, SimStats)

    def test_repeated_losses_quarantine_as_poison(self):
        specs = make_specs(apps=("lps", "hotspot"))
        # Stall every attempt forever; cap losses at 2.
        result = run_scheduled(
            specs, injector=self.stall_injector(max_per_job=99),
            lease_s=0.2, max_losses=2, retries=99,
        )
        assert not result.ok
        assert result.failed == len(specs)
        for failure in result.results.values():
            assert failure.kind == "poison"
            assert "quarantined" in failure.message

    def test_worker_lost_emits_taxonomy_events(self):
        sink = RecordingSink()
        bus = EventBus([sink])
        specs = make_specs(apps=("lps",))
        run_scheduled(
            specs, injector=self.stall_injector(), lease_s=0.2, obs=bus,
        )
        lease_actions = [
            e.action for e in sink.events
            if e.kind == EventKind.RUNNER_LEASE
        ]
        assert "grant" in lease_actions
        assert "expire" in lease_actions
        retry_kinds = [
            e.error_kind for e in sink.events
            if e.kind == EventKind.RUNNER_JOB and e.phase == "retry"
        ]
        assert "worker-lost" in retry_kinds


class TestExactlyOnce:
    def test_duplicate_deliveries_settle_once(self):
        specs = make_specs(apps=("lps", "hotspot"))
        plan = RunnerFaultPlan.single("transport.dup", rate=1.0, max_per_job=5)
        settled = []
        result = run_scheduled(
            specs, injector=RunnerFaultInjector(plan),
            on_result=lambda key, spec, outcome: settled.append(key),
        )
        assert result.ok
        assert result.duplicates >= 1
        assert sorted(settled) == sorted(result.results)  # one call per key
        assert result.executed == len(specs)

    def test_dropped_results_recover_through_the_lease(self):
        specs = make_specs(apps=("lps",))
        plan = RunnerFaultPlan.single("transport.drop", rate=1.0, max_per_job=1)
        result = run_scheduled(
            specs, injector=RunnerFaultInjector(plan), lease_s=0.2,
            retries=3, max_losses=3,
        )
        assert result.ok
        assert result.losses >= 1

    def test_checkpoint_settles_exactly_once_under_dup(self, tmp_path):
        specs = make_specs(apps=("lps", "hotspot"))
        reference = Checkpoint(tmp_path / "reference.jsonl")
        run_scheduled(specs, checkpoint=reference)
        faulted = Checkpoint(tmp_path / "faulted.jsonl")
        plan = RunnerFaultPlan.single("transport.dup", rate=1.0, max_per_job=5)
        run_scheduled(
            specs, injector=RunnerFaultInjector(plan), checkpoint=faulted,
        )
        assert (
            Checkpoint.load(faulted.path).canonical_bytes()
            == Checkpoint.load(reference.path).canonical_bytes()
        )


class TestDrain:
    def test_drain_finishes_in_flight_and_reports_remainder(self, tmp_path):
        specs = make_specs(
            apps=("lps", "hotspot"), mechanisms=("none", "snake")
        )
        checkpoint = Checkpoint(tmp_path / "ck.jsonl")
        transport = InlineTransport(workers=1)
        scheduler = Scheduler(
            specs, transport=transport, clock=VirtualClock(),
            checkpoint=checkpoint, backoff_s=0.01,
        )

        calls = []

        def drain_after_first(key, spec, outcome):
            calls.append(key)
            scheduler.request_drain()

        scheduler._on_result = drain_after_first  # noqa: SLF001 - test hook
        result = scheduler.run()
        assert result.drained
        assert result.executed >= 1
        assert result.remaining == len(specs) - result.executed
        assert result.remaining >= 1
        # Every settled cell is durable; resume completes the rest.
        resumed = Scheduler(
            specs, jobs=0, checkpoint=Checkpoint.load(checkpoint.path),
            resume=True,
        ).run()
        assert resumed.ok
        assert resumed.reused == result.executed
        assert resumed.executed == len(specs) - result.executed


class TestPoolParity:
    def test_run_jobs_inline_still_never_retries(self):
        from repro.runner import JobSpec, run_jobs

        spec = JobSpec.make("lps", "does-not-exist", scale=SCALE)
        result = run_jobs([spec], jobs=0, retries=5)
        (failure,) = result.results.values()
        assert failure.failed
        assert failure.kind == "InvalidConfig"
        assert failure.attempts == 1
