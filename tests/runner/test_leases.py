"""Lease semantics: the liveness contract between scheduler and workers."""

import pytest

from repro.runner.leases import (
    DEFAULT_LEASE_S,
    HEARTBEATS_PER_LEASE,
    Lease,
    LeaseTable,
    heartbeat_interval,
)


class TestHeartbeatInterval:
    def test_several_heartbeats_fit_in_one_lease(self):
        assert heartbeat_interval(DEFAULT_LEASE_S) == pytest.approx(
            DEFAULT_LEASE_S / HEARTBEATS_PER_LEASE
        )

    def test_floor_for_tiny_leases(self):
        assert heartbeat_interval(0.0001) == pytest.approx(0.01)


class TestLease:
    def make(self, **kwargs):
        defaults = dict(
            key="abc", worker=0, attempt=1, granted_at=100.0, lease_s=10.0
        )
        defaults.update(kwargs)
        return Lease(**defaults)

    def test_fresh_lease_counts_grant_as_liveness(self):
        lease = self.make()
        assert lease.last_heartbeat == 100.0
        assert not lease.expired(105.0)

    def test_expires_only_after_silence_beyond_the_window(self):
        lease = self.make()
        assert not lease.expired(110.0)  # exactly the window: still alive
        assert lease.expired(110.1)

    def test_renew_resets_the_window(self):
        lease = self.make()
        lease.renew(109.0)
        assert not lease.expired(115.0)
        assert lease.expired(119.5)
        assert lease.heartbeats == 1

    def test_zero_lease_never_expires(self):
        lease = self.make(lease_s=0.0)
        assert not lease.expired(1e9)

    def test_deadline_is_independent_of_heartbeats(self):
        lease = self.make(deadline=120.0)
        lease.renew(119.0)  # alive and chatty...
        assert lease.timed_out(120.0)  # ...but still over budget
        assert not lease.timed_out(119.9)

    def test_no_deadline_never_times_out(self):
        assert not self.make().timed_out(1e9)

    def test_age(self):
        assert self.make().age(107.5) == pytest.approx(7.5)


class TestLeaseTable:
    def test_grant_indexes_both_ways(self):
        table = LeaseTable()
        lease = table.grant("k1", 0, 1, now=0.0, lease_s=5.0)
        assert table.for_worker(0) is lease
        assert table.for_key("k1") is lease
        assert "k1" in table
        assert len(table) == 1

    def test_busy_worker_cannot_double_lease(self):
        table = LeaseTable()
        table.grant("k1", 0, 1, now=0.0, lease_s=5.0)
        with pytest.raises(ValueError, match="already holds"):
            table.grant("k2", 0, 1, now=0.0, lease_s=5.0)

    def test_leased_job_cannot_be_granted_twice(self):
        table = LeaseTable()
        table.grant("k1", 0, 1, now=0.0, lease_s=5.0)
        with pytest.raises(ValueError, match="already leased"):
            table.grant("k1", 1, 1, now=0.0, lease_s=5.0)

    def test_release_frees_both_indexes(self):
        table = LeaseTable()
        table.grant("k1", 0, 1, now=0.0, lease_s=5.0)
        released = table.release(0)
        assert released is not None and released.key == "k1"
        assert table.for_worker(0) is None
        assert "k1" not in table
        # A revoked job can be re-leased to another worker.
        table.grant("k1", 1, 2, now=1.0, lease_s=5.0)

    def test_stale_heartbeat_is_benign(self):
        table = LeaseTable()
        assert table.renew(7, now=1.0) is None

    def test_expired_and_timed_out_in_grant_order(self):
        table = LeaseTable()
        table.grant("late", 1, 1, now=2.0, lease_s=1.0, deadline=4.0)
        table.grant("early", 0, 1, now=1.0, lease_s=1.0, deadline=4.0)
        expired = table.expired(10.0)
        assert [l.key for l in expired] == ["early", "late"]
        timed_out = table.timed_out(10.0)
        assert [l.key for l in timed_out] == ["early", "late"]

    def test_active_lists_all_leases(self):
        table = LeaseTable()
        table.grant("a", 0, 1, now=0.0, lease_s=5.0)
        table.grant("b", 1, 1, now=1.0, lease_s=5.0)
        assert [l.key for l in table.active()] == ["a", "b"]
