"""Interrupt / --resume semantics (the PR's acceptance scenario).

A sweep killed partway through must resume from its checkpoint, run only
the missing cells (no duplicated jobs), and produce figure dictionaries
byte-identical to an uninterrupted run.
"""

import pytest

from repro.analysis import experiments
from repro.runner import Checkpoint, grid_specs, run_jobs

SCALE = 0.05
APPS = ["lps", "hotspot"]
MECHS = ["none", "snake"]


class _StopAfter(Exception):
    """Stands in for the operator killing the sweep."""


def _interrupt_after(n):
    seen = []

    def on_result(key, spec, outcome):
        seen.append(key)
        if len(seen) >= n:
            raise _StopAfter()

    return on_result


class TestResume:
    def test_interrupted_sweep_resumes_without_duplicates(self, tmp_path):
        specs = grid_specs(APPS, MECHS, scale=SCALE)
        path = tmp_path / "sweep.jsonl"

        with pytest.raises(_StopAfter):
            run_jobs(
                specs, jobs=0, checkpoint=Checkpoint(path),
                on_result=_interrupt_after(2),
            )
        # The two finished cells were durable before the interrupt.
        assert len(Checkpoint.load(path)) == 2

        resumed = run_jobs(
            specs, jobs=0, checkpoint=Checkpoint.load(path), resume=True,
        )
        assert resumed.ok
        assert resumed.reused == 2  # checkpointed cells not re-run
        assert resumed.executed == 2  # only the missing cells ran
        assert len(resumed.results) == len(specs)
        assert len(Checkpoint.load(path)) == len(specs)

    def test_killed_workers_mid_sweep_then_resume(self, tmp_path):
        """Orchestrator dies while subprocess workers are in flight (they
        are SIGKILLed); --resume completes the grid with no duplicated
        jobs."""
        specs = grid_specs(APPS, MECHS, scale=SCALE)
        path = tmp_path / "sweep.jsonl"

        with pytest.raises(_StopAfter):
            run_jobs(
                specs, jobs=2, checkpoint=Checkpoint(path),
                on_result=_interrupt_after(1),
            )
        done = len(Checkpoint.load(path))
        assert 1 <= done < len(specs)

        resumed = run_jobs(
            specs, jobs=2, checkpoint=Checkpoint.load(path), resume=True,
        )
        assert resumed.ok
        assert resumed.reused == done
        assert resumed.executed == len(specs) - done  # no duplicated jobs
        assert len(Checkpoint.load(path)) == len(specs)

    def test_resumed_figures_are_byte_identical(self, tmp_path):
        specs = grid_specs(APPS, MECHS, scale=SCALE)
        path = tmp_path / "sweep.jsonl"

        with pytest.raises(_StopAfter):
            run_jobs(
                specs, jobs=0, checkpoint=Checkpoint(path),
                on_result=_interrupt_after(2),
            )
        resumed = run_jobs(
            specs, jobs=0, checkpoint=Checkpoint.load(path), resume=True,
        )
        uninterrupted = run_jobs(specs, jobs=0)

        assert set(resumed.results) == set(uninterrupted.results)
        for key in resumed.results:
            assert (
                resumed.results[key].to_json_dict()
                == uninterrupted.results[key].to_json_dict()
            )
        for derive in (
            experiments.figure16_from,
            experiments.figure17_from,
            experiments.figure18_from,
        ):
            assert derive(resumed.cells()) == derive(uninterrupted.cells())

    def test_without_resume_the_checkpoint_is_discarded(self, tmp_path):
        specs = grid_specs(["lps"], ["none"], scale=SCALE)
        path = tmp_path / "sweep.jsonl"
        run_jobs(specs, jobs=0, checkpoint=Checkpoint(path))
        fresh = run_jobs(specs, jobs=0, checkpoint=Checkpoint.load(path))
        assert fresh.reused == 0
        assert fresh.executed == 1

    def test_retry_failed_reruns_failed_cells(self, tmp_path):
        from repro.runner import JobSpec

        path = tmp_path / "sweep.jsonl"
        bad = JobSpec.make("no-such-app", "none", scale=SCALE)
        first = run_jobs([bad], jobs=0, checkpoint=Checkpoint(path))
        assert first.failed == 1

        kept = run_jobs(
            [bad], jobs=0, checkpoint=Checkpoint.load(path), resume=True,
        )
        assert kept.reused == 1 and kept.executed == 0
        assert kept.failed == 1  # reused failure still counts as failed

        retried = run_jobs(
            [bad], jobs=0, checkpoint=Checkpoint.load(path), resume=True,
            retry_failed=True,
        )
        assert retried.reused == 0 and retried.executed == 1
