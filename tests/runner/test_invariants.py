"""Invariant violations through the runner: their own taxonomy entry,
never retried, and the specific broken law named in the wire kind."""

import contextlib

import pytest

from repro.gpusim import GPUConfig
from repro.runner import (
    InvariantViolation,
    JobSpec,
    run_jobs,
    is_retryable,
)
from repro.runner.errors import error_from_kind

SCALE = 0.05
SANITIZED = GPUConfig.scaled().with_(sanitize=True)


@contextlib.contextmanager
def _leaky_l1():
    """Make every demand load leak a phantom MSHR allocation, so the
    sanitizer's mshr_balance audit fires early in any simulation."""
    from repro.gpusim.unified_cache import UnifiedL1Cache

    original = UnifiedL1Cache.demand_load

    def leaky(self, line_addr, now, sector_mask=-1):
        self._mshr.allocated += 1
        return original(self, line_addr, now, sector_mask)

    UnifiedL1Cache.demand_load = leaky
    try:
        yield
    finally:
        UnifiedL1Cache.demand_load = original


class TestTaxonomy:
    def test_instance_kind_names_the_law(self):
        err = InvariantViolation("boom", invariant="mshr_balance")
        assert err.kind == "invariant:mshr_balance"
        assert InvariantViolation.kind == "InvariantViolation"

    def test_wire_round_trip(self):
        err = error_from_kind(
            "invariant:l2_conservation", "msg", state_dump={"cycle": 9}
        )
        assert isinstance(err, InvariantViolation)
        assert err.invariant == "l2_conservation"
        assert err.kind == "invariant:l2_conservation"
        assert err.state_dump == {"cycle": 9}

    def test_never_retryable(self):
        assert not is_retryable("invariant:mshr_balance")
        assert not is_retryable("InvariantViolation")
        assert not is_retryable("invariant:anything_else")

    def test_known_kinds_keep_their_policy(self):
        assert is_retryable("JobCrash")
        assert not is_retryable("JobTimeout")
        assert not is_retryable("SimulationHang")
        assert not is_retryable("InvalidConfig")
        assert not is_retryable("SomeUnknownKind")


class TestThroughTheRunner:
    def test_violation_becomes_failed_invariant_cell(self):
        with _leaky_l1():
            result = run_jobs(
                [JobSpec.make("lps", "none", config=SANITIZED, scale=SCALE)],
                jobs=0,
            )
        (outcome,) = result.results.values()
        assert outcome.failed
        assert outcome.kind == "invariant:mshr_balance"
        assert str(outcome) == "FAILED(invariant:mshr_balance)"
        assert outcome.state_dump["violations"]

    def test_violations_are_not_retried(self):
        with _leaky_l1():
            result = run_jobs(
                [JobSpec.make("lps", "none", config=SANITIZED, scale=SCALE)],
                jobs=0, retries=3, backoff_s=0.01,
            )
        (outcome,) = result.results.values()
        assert outcome.kind.startswith("invariant:")
        assert outcome.attempts == 1

    def test_violation_kind_survives_the_worker_pipe(self):
        # fork-based workers inherit the patched L1
        with _leaky_l1():
            result = run_jobs(
                [JobSpec.make("lps", "none", config=SANITIZED, scale=SCALE)],
                jobs=1,
            )
        (outcome,) = result.results.values()
        assert outcome.failed
        assert outcome.kind == "invariant:mshr_balance"
        assert outcome.state_dump["violations"]

    def test_healthy_sanitized_cell_still_passes(self):
        result = run_jobs(
            [JobSpec.make("lps", "snake", config=SANITIZED, scale=SCALE)],
            jobs=0,
        )
        (outcome,) = result.results.values()
        assert not getattr(outcome, "failed", False)
