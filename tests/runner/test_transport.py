"""The message plane: clocks, the faulty Inbox, and the inline transport."""

import pytest

from repro.gpusim.faults import RunnerFaultInjector, RunnerFaultPlan
from repro.runner.transport import (
    Inbox,
    InlineTransport,
    SubprocessTransport,
    VirtualClock,
    WallClock,
)


class TestClocks:
    def test_virtual_clock_sleep_advances_time(self):
        clock = VirtualClock(start=10.0)
        clock.sleep(2.5)
        clock.advance(1.0)
        assert clock.now() == pytest.approx(13.5)

    def test_wall_clock_is_monotonic(self):
        clock = WallClock()
        a = clock.now()
        assert clock.now() >= a


class TestInbox:
    def test_delivery_preserves_send_order(self):
        inbox = Inbox()
        inbox.put(0, {"type": "result", "key": "a"}, now=1.0)
        inbox.put(1, {"type": "result", "key": "b"}, now=1.0)
        drained = inbox.drain(1.0)
        assert [m["key"] for _, m in drained] == ["a", "b"]
        assert [w for w, _ in drained] == [0, 1]

    def test_future_sent_at_defers_delivery(self):
        inbox = Inbox()
        inbox.put(0, {"type": "result", "key": "a"}, now=1.0, sent_at=5.0)
        assert inbox.drain(4.9) == []
        assert len(inbox.drain(5.0)) == 1

    def test_discard_unsent_keeps_already_sent_messages(self):
        inbox = Inbox()
        inbox.put(0, {"type": "result", "key": "sent"}, now=1.0)
        inbox.put(0, {"type": "result", "key": "unsent"}, now=1.0, sent_at=9.0)
        inbox.discard_unsent(0, killed_at=2.0)
        drained = inbox.drain(100.0)
        assert [m["key"] for _, m in drained] == ["sent"]

    def _inbox_with(self, site, rate=1.0):
        injector = RunnerFaultInjector(
            RunnerFaultPlan.single(site, rate=rate, max_per_job=10)
        )
        return Inbox(injector), injector

    def test_drop_fault_loses_the_message(self):
        inbox, injector = self._inbox_with("transport.drop")
        inbox.put(0, {"type": "result", "key": "k"}, now=0.0)
        assert inbox.drain(1e9) == []
        assert injector.counts["transport.drop"] == 1

    def test_delay_fault_defers_delivery(self):
        inbox, injector = self._inbox_with("transport.delay")
        inbox.put(0, {"type": "result", "key": "k"}, now=0.0)
        assert inbox.drain(0.0) == []  # delayed past "now"
        assert len(inbox.drain(1e9)) == 1

    def test_dup_fault_delivers_twice(self):
        inbox, injector = self._inbox_with("transport.dup")
        inbox.put(0, {"type": "heartbeat", "key": "k"}, now=0.0)
        assert len(inbox.drain(1e9)) == 2

    def test_ready_messages_are_immune_to_faults(self):
        inbox, _ = self._inbox_with("transport.drop")
        inbox.put(0, {"type": "ready", "worker": 0}, now=0.0)
        assert len(inbox.drain(1e9)) == 1

    def test_fault_cap_per_site_and_key(self):
        inbox, injector = self._inbox_with("transport.drop")
        # The cap comes from the plan's max_per_job (10 here).
        for _ in range(12):
            inbox.put(0, {"type": "result", "key": "k"}, now=0.0)
        # 10 dropped (the cap), the rest delivered.
        assert len(inbox.drain(1e9)) == 2


def _spec_dict():
    from repro.runner import JobSpec

    return JobSpec.make("lps", "none", scale=0.05).to_dict()


class TestInlineTransport:
    def test_workers_announce_ready_once(self):
        transport = InlineTransport(workers=2)
        transport.start()
        ready = [m for _, m in transport.poll(0.0) if m["type"] == "ready"]
        assert len(ready) == 2
        assert transport.poll(0.0) == []

    def test_assignment_executes_synchronously(self):
        transport = InlineTransport(workers=1)
        transport.start()
        transport.poll(0.0)
        transport.assign(
            0,
            {"type": "assign", "key": "k", "spec": _spec_dict(), "attempt": 1},
        )
        messages = [m for _, m in transport.poll(1.0)]
        assert len(messages) == 1
        assert messages[0]["type"] == "result"
        assert messages[0]["status"] == "ok"
        assert messages[0]["key"] == "k"

    def test_kill_and_respawn_cycle(self):
        transport = InlineTransport(workers=1)
        transport.start()
        transport.poll(0.0)
        transport.kill(0, now=1.0)
        assert not transport.alive(0)
        assert "killed" in transport.exit_detail(0)
        transport.respawn(0, now=2.0)
        assert transport.alive(0)
        ready = [m for _, m in transport.poll(2.0) if m["type"] == "ready"]
        assert len(ready) == 1

    def test_chaos_kill_is_a_silent_death(self):
        injector = RunnerFaultInjector(
            RunnerFaultPlan.single("worker.kill", rate=1.0)
        )
        transport = InlineTransport(workers=1, faults=injector)
        transport.start()
        transport.poll(0.0)
        transport.assign(
            0,
            {"type": "assign", "key": "k", "spec": _spec_dict(), "attempt": 1},
        )
        results = [m for _, m in transport.poll(1.0) if m["type"] == "result"]
        assert results == []  # died without reporting
        assert not transport.alive(0)
        assert "signal" in transport.exit_detail(0)

    def test_heartbeat_stall_withholds_the_result_past_the_lease(self):
        plan = RunnerFaultPlan.single(
            "worker.heartbeat_stall", rate=1.0, delay_s=0.5
        )
        injector = RunnerFaultInjector(plan)
        transport = InlineTransport(workers=1, faults=injector)
        transport.start()
        transport.poll(0.0)
        transport.assign(
            0,
            {"type": "assign", "key": "k", "spec": _spec_dict(), "attempt": 1},
        )
        assert [m for _, m in transport.poll(0.0) if m["type"] == "result"] == []
        # The stall is bounded: 2*delay_s <= stall < 4*delay_s.
        late = [m for _, m in transport.poll(2.0) if m["type"] == "result"]
        assert len(late) == 1


class TestSubprocessTransport:
    def test_round_trip_and_heartbeats(self):
        transport = SubprocessTransport(1, lease_s=0.25)
        transport.start()
        try:
            import time

            deadline = time.monotonic() + 30.0
            saw_ready = saw_result = False
            heartbeats = 0
            assigned = False
            while time.monotonic() < deadline and not saw_result:
                for worker, message in transport.poll(time.monotonic()):
                    if message["type"] == "ready":
                        saw_ready = True
                    elif message["type"] == "heartbeat":
                        heartbeats += 1
                    elif message["type"] == "result":
                        saw_result = True
                        assert message["status"] == "ok"
                if saw_ready and not assigned:
                    assigned = True
                    transport.assign(
                        0,
                        {
                            "type": "assign", "key": "k",
                            "spec": _spec_dict(), "attempt": 1,
                        },
                    )
                time.sleep(0.01)
            assert saw_ready and saw_result
        finally:
            transport.stop()

    def test_kill_is_detected_and_respawn_recovers(self):
        transport = SubprocessTransport(1, lease_s=5.0)
        transport.start()
        try:
            import time

            assert transport.alive(0)
            transport.kill(0, now=0.0)
            assert not transport.alive(0)
            transport.respawn(0, now=0.0)
            deadline = time.monotonic() + 30.0
            ready = False
            while time.monotonic() < deadline and not ready:
                ready = any(
                    m["type"] == "ready"
                    for _, m in transport.poll(time.monotonic())
                )
                time.sleep(0.01)
            assert ready
        finally:
            transport.stop()
