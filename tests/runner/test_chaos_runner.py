"""Seeded chaos soak matrix for the sweep scheduler (tier-2, ``slow``).

Every cell of the matrix runs the same small sweep twice — once
fault-free, once under a seeded :class:`RunnerFaultPlan` — and asserts
the two are *byte-identical* at the checkpoint level and *exactly-once*
at the effect level.  Faults may change how many attempts, losses and
duplicate deliveries it takes, but never what the sweep computes.

The matrix covers worker SIGKILL at each lease phase, heartbeat stalls,
and every transport fault, across several seeds, plus multi-site storm
plans.  Run with ``pytest -m slow tests/runner/test_chaos_runner.py``.
"""

import pytest

from repro.gpusim.faults import RunnerFaultInjector, RunnerFaultPlan
from repro.runner import Checkpoint, grid_specs
from repro.runner.scheduler import Scheduler
from repro.runner.transport import InlineTransport, VirtualClock

pytestmark = pytest.mark.slow

SCALE = 0.05
SEEDS = (1, 2, 7)
SINGLE_SITES = (
    "worker.kill",
    "worker.heartbeat_stall",
    "transport.drop",
    "transport.delay",
    "transport.dup",
    "checkpoint.torn",
)


def specs():
    return grid_specs(["lps", "hotspot"], ["none", "snake"], scale=SCALE)


def run_sweep(checkpoint_path, injector=None, on_result=None):
    plan = injector.plan if injector is not None else None
    transport = InlineTransport(workers=2, faults=injector)
    return Scheduler(
        specs(),
        transport=transport,
        clock=VirtualClock(),
        # Convergence guarantees: enough retries to outlast the per-job
        # fault cap, a lease shorter than the minimum stall (2*delay_s),
        # and a loss budget one above the cap so recovery wins.
        retries=max(2, plan.max_per_job if plan else 0),
        max_losses=(plan.max_per_job + 1) if plan else 3,
        lease_s=plan.delay_s if plan else 0.2,
        backoff_s=0.01,
        checkpoint=Checkpoint(checkpoint_path),
        on_result=on_result,
        faults=injector,
    ).run()


def canonical(checkpoint_path):
    return Checkpoint.load(checkpoint_path).canonical_bytes()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    path = tmp_path_factory.mktemp("reference") / "sweep.jsonl"
    result = run_sweep(path)
    assert result.ok
    return canonical(path)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("site", SINGLE_SITES)
def test_single_site_chaos_is_byte_identical(site, seed, tmp_path, reference):
    plan = RunnerFaultPlan.single(
        site, rate=1.0, seed=seed, max_per_job=2, delay_s=0.4
    )
    path = tmp_path / "sweep.jsonl"
    settled = []
    result = run_sweep(
        path,
        injector=RunnerFaultInjector(plan),
        on_result=lambda key, spec, outcome: settled.append(key),
    )
    assert result.ok, {k: getattr(v, "message", "") for k, v in result.results.items()}
    assert canonical(path) == reference
    # Exactly-once job effects: one settlement per deduped job hash,
    # even when the transport duplicated or workers re-ran the job.
    assert sorted(settled) == sorted(result.results)


@pytest.mark.parametrize("seed", SEEDS)
def test_storm_chaos_is_byte_identical(seed, tmp_path, reference):
    plan = RunnerFaultPlan.storm(seed=seed, max_per_job=2, delay_s=0.4)
    path = tmp_path / "sweep.jsonl"
    settled = []
    result = run_sweep(
        path,
        injector=RunnerFaultInjector(plan),
        on_result=lambda key, spec, outcome: settled.append(key),
    )
    assert result.ok
    assert canonical(path) == reference
    assert sorted(settled) == sorted(result.results)


@pytest.mark.parametrize("phase", ("claim", "report"))
@pytest.mark.parametrize("seed", SEEDS)
def test_worker_kill_at_each_lease_phase(phase, seed, tmp_path, reference,
                                         monkeypatch):
    monkeypatch.setattr(
        RunnerFaultInjector, "kill_phase", lambda self, key, attempt: phase
    )
    plan = RunnerFaultPlan.single(
        "worker.kill", rate=1.0, seed=seed, max_per_job=2
    )
    path = tmp_path / "sweep.jsonl"
    result = run_sweep(path, injector=RunnerFaultInjector(plan))
    assert result.ok
    assert canonical(path) == reference


def test_heartbeat_stall_with_duplicate_delivery(tmp_path, reference):
    # The compound failure the dedup set exists for: a stalled worker's
    # late result arrives after the job was stolen and re-run, then the
    # transport duplicates messages on top.
    plan = RunnerFaultPlan.make(
        {"worker.heartbeat_stall": 1.0, "transport.dup": 1.0},
        seed=5, max_per_job=1, delay_s=0.4,
    )
    path = tmp_path / "sweep.jsonl"
    settled = []
    result = run_sweep(
        path,
        injector=RunnerFaultInjector(plan),
        on_result=lambda key, spec, outcome: settled.append(key),
    )
    assert result.ok
    assert result.losses >= 1
    assert canonical(path) == reference
    assert sorted(settled) == sorted(result.results)
