"""JobSpec identity (deterministic hashing) and in-process execution."""

import pytest

from repro.bench.schema import BENCH_SCHEMA_VERSION
from repro.gpusim import GPUConfig
from repro.runner import (
    InvalidConfig,
    JobSpec,
    engine_fingerprint,
    execute_job,
    job_hash,
)

SCALE = 0.05


class TestJobHash:
    def test_deterministic(self):
        a = JobSpec.make("lps", "snake", scale=0.5, seed=3)
        b = JobSpec.make("lps", "snake", scale=0.5, seed=3)
        assert job_hash(a) == job_hash(b)

    def test_every_axis_changes_the_hash(self):
        base = JobSpec.make("lps", "snake", scale=0.5, seed=3)
        for other in (
            JobSpec.make("hotspot", "snake", scale=0.5, seed=3),
            JobSpec.make("lps", "none", scale=0.5, seed=3),
            JobSpec.make("lps", "snake", scale=0.25, seed=3),
            JobSpec.make("lps", "snake", scale=0.5, seed=4),
            JobSpec.make("lps", "snake", scale=0.5, seed=3, fault="livelock"),
        ):
            assert job_hash(other) != job_hash(base)

    def test_mech_kwargs_change_the_hash(self):
        """The old sweep-cache key ignored mech_kwargs entirely; the job
        hash must not (same grid cell, different eviction policy)."""
        plain = JobSpec.make("lps", "snake")
        popcount = JobSpec.make("lps", "snake", eviction="pop")
        assert job_hash(plain) != job_hash(popcount)

    def test_mech_kwarg_order_is_irrelevant(self):
        a = JobSpec.make("lps", "snake", eviction="pop", degree=2)
        b = JobSpec.make("lps", "snake", degree=2, eviction="pop")
        assert job_hash(a) == job_hash(b)

    def test_config_changes_the_hash(self):
        base = JobSpec.make("lps", "snake", config=GPUConfig.scaled())
        tuned = JobSpec.make(
            "lps", "snake", config=GPUConfig.scaled().with_(tail_entries=20)
        )
        assert job_hash(base) != job_hash(tuned)

    def test_hash_survives_dict_round_trip(self):
        spec = JobSpec.make(
            "lps", "snake", config=GPUConfig.scaled(), scale=0.5, seed=7,
            eviction="pop",
        )
        back = JobSpec.from_dict(spec.to_dict())
        assert back == spec
        assert job_hash(back) == job_hash(spec)

    def test_label_names_the_cell(self):
        spec = JobSpec.make("lps", "snake", eviction="pop")
        assert "lps" in spec.label()
        assert "snake" in spec.label()
        assert "eviction=pop" in spec.label()


class TestEngineFingerprint:
    """Results depend on the simulating *implementation* too: a
    checkpoint produced by the legacy loop must never be reused for a
    skip-ahead job (and vice versa), and a bench-schema bump invalidates
    recorded performance identities."""

    def test_default_is_skip_ahead(self):
        spec = JobSpec.make("lps", "snake")
        assert engine_fingerprint(spec)["loop"] == "skip-ahead"
        assert engine_fingerprint(spec)["bench_schema"] == BENCH_SCHEMA_VERSION

    def test_legacy_loop_changes_the_hash(self):
        event = JobSpec.make(
            "lps", "snake", config=GPUConfig.scaled().with_(legacy_loop=False)
        )
        legacy = JobSpec.make(
            "lps", "snake", config=GPUConfig.scaled().with_(legacy_loop=True)
        )
        assert engine_fingerprint(legacy)["loop"] == "legacy"
        assert job_hash(event) != job_hash(legacy)


class TestExecuteJob:
    def test_runs_a_real_cell(self):
        stats = execute_job(JobSpec.make("lps", "none", scale=SCALE))
        assert stats.instructions > 0
        assert stats.cycles > 0

    def test_unknown_app_is_invalid_config(self):
        with pytest.raises(InvalidConfig):
            execute_job(JobSpec.make("no-such-app", "none", scale=SCALE))

    def test_unknown_mechanism_is_invalid_config(self):
        with pytest.raises(InvalidConfig):
            execute_job(JobSpec.make("lps", "no-such-mech", scale=SCALE))

    def test_bad_config_is_invalid_config(self):
        spec = JobSpec.make("lps", "none", config={"num_sms": 0}, scale=SCALE)
        with pytest.raises(InvalidConfig):
            execute_job(spec)

    def test_unknown_config_field_is_invalid_config(self):
        spec = JobSpec.make("lps", "none", config={"not_a_field": 1}, scale=SCALE)
        with pytest.raises(InvalidConfig):
            execute_job(spec)

    def test_unknown_fault_is_invalid_config(self):
        with pytest.raises(InvalidConfig):
            execute_job(JobSpec.make("lps", "none", scale=SCALE, fault="gremlins"))
