"""Crash-isolated parallel execution: the resilience test suite.

These tests exercise *real* subprocess workers — SIGKILL'd mid-job,
stalled past the timeout, or livelocked until the in-simulator watchdog
fires — via the chaos ``fault`` hook on :class:`JobSpec`.
"""

import time

from repro.gpusim import GPUConfig
from repro.gpusim.stats import SimStats
from repro.runner import (
    JobSpec,
    grid_specs,
    job_hash,
    run_grid,
    run_jobs,
)

SCALE = 0.05
FAST_RETRY = dict(backoff_s=0.01)


class TestParallelCorrectness:
    def test_pooled_equals_inline(self):
        specs = grid_specs(["lps", "hotspot"], ["none", "snake"], scale=SCALE)
        inline = run_jobs(specs, jobs=0)
        pooled = run_jobs(specs, jobs=2)
        assert inline.ok and pooled.ok
        assert set(inline.results) == set(pooled.results)
        for key in inline.results:
            assert (
                inline.results[key].to_json_dict()
                == pooled.results[key].to_json_dict()
            )

    def test_duplicate_specs_run_once(self):
        spec = JobSpec.make("lps", "none", scale=SCALE)
        result = run_jobs([spec, spec, spec], jobs=0)
        assert len(result.results) == 1
        assert result.executed == 1

    def test_cells_view_is_the_grid(self):
        result = run_grid(["lps"], ["none", "snake"], scale=SCALE, jobs=0)
        cells = result.cells()
        assert set(cells) == {"lps"}
        assert set(cells["lps"]) == {"none", "snake"}


class TestCrashIsolation:
    def test_sigkilled_worker_loses_one_cell_not_the_sweep(self):
        result = run_grid(
            ["lps"], ["none", "snake"], scale=SCALE, jobs=2, retries=1,
            faults={("lps", "snake"): "crash"}, **FAST_RETRY,
        )
        crashed = result.cells()["lps"]["snake"]
        survived = result.cells()["lps"]["none"]
        assert crashed.failed
        assert crashed.kind == "JobCrash"
        assert "signal" in crashed.message
        assert crashed.attempts == 2  # retries=1 -> two attempts, both killed
        assert isinstance(survived, SimStats)
        assert result.failed == 1

    def test_transient_crash_recovers_on_retry(self, tmp_path):
        sentinel = tmp_path / "crashed-once"
        from repro.runner import Checkpoint

        ckpt = Checkpoint(tmp_path / "ckpt.jsonl")
        result = run_jobs(
            [
                JobSpec.make(
                    "lps", "none", scale=SCALE,
                    fault="crash-once:%s" % sentinel,
                )
            ],
            jobs=1, retries=2, checkpoint=ckpt, **FAST_RETRY,
        )
        assert result.ok
        (stats,) = result.results.values()
        assert isinstance(stats, SimStats)
        assert sentinel.exists()
        (record,) = ckpt.records.values()
        assert record["attempts"] == 2


class TestTimeout:
    def test_stalled_worker_is_killed_at_the_deadline(self):
        started = time.monotonic()
        result = run_jobs(
            [JobSpec.make("lps", "none", scale=SCALE, fault="sleep:60")],
            jobs=1, timeout=1.0,
        )
        elapsed = time.monotonic() - started
        (outcome,) = result.results.values()
        assert outcome.failed
        assert outcome.kind == "JobTimeout"
        assert "timeout" in outcome.message
        assert elapsed < 30  # nowhere near the 60s stall

    def test_timeouts_are_not_retried(self):
        result = run_jobs(
            [JobSpec.make("lps", "none", scale=SCALE, fault="sleep:60")],
            jobs=1, timeout=0.5, retries=3, **FAST_RETRY,
        )
        (outcome,) = result.results.values()
        assert outcome.kind == "JobTimeout"
        assert outcome.attempts == 1


class TestWatchdogOverThePipe:
    def test_livelocked_simulation_fails_with_state_dump(self):
        config = GPUConfig.scaled().with_(watchdog_cycles=3_000)
        result = run_grid(
            ["lps"], ["none", "snake"], config=config, scale=SCALE, jobs=2,
            faults={("lps", "snake"): "livelock"},
        )
        hung = result.cells()["lps"]["snake"]
        survived = result.cells()["lps"]["none"]
        assert hung.failed
        assert hung.kind == "SimulationHang"
        # The diagnostic dump crossed the worker pipe intact.
        assert hung.state_dump["sms"]
        assert any(sm["warps"] for sm in hung.state_dump["sms"])
        assert "l2" in hung.state_dump and "dram" in hung.state_dump
        # ...and the rest of the sweep still completed.
        assert isinstance(survived, SimStats)


class TestObsEvents:
    def test_lifecycle_events_are_emitted(self):
        from repro.obs.events import EventBus, EventKind

        class Recorder:
            def __init__(self):
                self.events = []

            def accept(self, event):
                self.events.append(event)

            def close(self):
                pass

        bus = EventBus()
        recorder = bus.attach(Recorder())
        run_jobs(
            [JobSpec.make("lps", "none", scale=SCALE)], jobs=0, obs=bus,
        )
        runner_events = [
            e for e in recorder.events if e.kind is EventKind.RUNNER_JOB
        ]
        phases = [e.phase for e in runner_events]
        assert "start" in phases
        assert "done" in phases
