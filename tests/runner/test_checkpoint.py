"""Atomic JSONL checkpointing."""

import json

import pytest

from repro.gpusim.stats import SimStats
from repro.runner import Checkpoint, CheckpointError, FailedResult
from repro.runner.checkpoint import make_record


def _ok_record(key="aaaa", cycles=100):
    stats = SimStats(cycles=cycles, instructions=2 * cycles, warps_finished=4)
    return make_record(key, {"app": "lps"}, stats, attempts=1, elapsed_s=1.5)


def _failed_record(key="bbbb"):
    failure = FailedResult(
        kind="SimulationHang", message="stuck", attempts=1,
        state_dump={"sms": []},
    )
    return make_record(key, {"app": "lps"}, failure, attempts=1, elapsed_s=9.0)


class TestRoundTrip:
    def test_ok_record_rebuilds_stats(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = Checkpoint(path)
        ckpt.append(_ok_record(cycles=123))
        loaded = Checkpoint.load(path)
        result = loaded.result_for("aaaa")
        assert isinstance(result, SimStats)
        assert result.cycles == 123
        assert result.to_json_dict() == ckpt.result_for("aaaa").to_json_dict()

    def test_failed_record_rebuilds_marker(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        Checkpoint(path).append(_failed_record())
        result = Checkpoint.load(path).result_for("bbbb")
        assert result.failed
        assert result.kind == "SimulationHang"
        assert result.state_dump == {"sms": []}
        assert str(result) == "FAILED(SimulationHang)"

    def test_unknown_key_is_none(self, tmp_path):
        assert Checkpoint.load(tmp_path / "missing.jsonl").result_for("zzzz") is None

    def test_append_supersedes_same_key(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = Checkpoint(path)
        ckpt.append(_failed_record(key="cccc"))
        ckpt.append(_ok_record(key="cccc"))
        assert len(Checkpoint.load(path)) == 1
        assert isinstance(Checkpoint.load(path).result_for("cccc"), SimStats)


class TestAtomicity:
    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = Checkpoint(path)
        ckpt.append(_ok_record())
        ckpt.append(_failed_record())
        assert path.exists()
        assert not (tmp_path / "ckpt.jsonl.tmp").exists()

    def test_every_line_is_complete_json(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = Checkpoint(path)
        for i in range(5):
            ckpt.append(_ok_record(key="key%d" % i))
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 5
        for line in lines:
            json.loads(line)  # must not raise


class TestCorruption:
    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = Checkpoint(path)
        ckpt.append(_ok_record(key="done"))
        with path.open("a") as handle:
            handle.write('{"key": "torn", "stat')  # killed mid-write
        loaded = Checkpoint.load(path)
        assert "done" in loaded
        assert "torn" not in loaded

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps(_ok_record()) + "\n"
        )
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_record_without_key_raises(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text(json.dumps({"status": "ok"}) + "\n")
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_append_without_key_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpoint(tmp_path / "c.jsonl").append({"status": "ok"})


class TestQuarantine:
    def test_torn_tail_goes_to_the_corrupt_sidecar(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = Checkpoint(path)
        ckpt.append(_ok_record(key="done"))
        ckpt.tear()
        loaded = Checkpoint.load(path)
        assert loaded.quarantined == 1
        assert loaded.corrupt_path.exists()
        fragment = loaded.corrupt_path.read_bytes()
        assert fragment.startswith(b'{"key": "torn-by-chaos"')
        assert fragment.endswith(b"\n")
        assert "done" in loaded  # intact records survive

    def test_appending_after_a_tear_heals_the_file(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = Checkpoint(path)
        ckpt.append(_ok_record(key="one"))
        ckpt.tear()
        ckpt.append(_ok_record(key="two"))  # atomic rewrite drops the tear
        loaded = Checkpoint.load(path)
        assert loaded.quarantined == 0
        assert "one" in loaded and "two" in loaded

    def test_clean_load_quarantines_nothing(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        Checkpoint(path).append(_ok_record())
        loaded = Checkpoint.load(path)
        assert loaded.quarantined == 0
        assert not loaded.corrupt_path.exists()


class TestCanonicalBytes:
    def test_ignores_attempts_elapsed_and_write_order(self, tmp_path):
        a = Checkpoint(tmp_path / "a.jsonl")
        a.append(make_record("k1", {"app": "lps"},
                             SimStats(cycles=10, instructions=20,
                                      warps_finished=1),
                             attempts=1, elapsed_s=0.5))
        a.append(_failed_record(key="k2"))
        b = Checkpoint(tmp_path / "b.jsonl")
        b.append(_failed_record(key="k2"))  # different order...
        b.append(make_record("k1", {"app": "lps"},
                             SimStats(cycles=10, instructions=20,
                                      warps_finished=1),
                             attempts=3, elapsed_s=99.0))  # ...and retry cost
        assert a.canonical_bytes() == b.canonical_bytes()

    def test_distinguishes_different_outcomes(self, tmp_path):
        a = Checkpoint(tmp_path / "a.jsonl")
        a.append(_ok_record(cycles=10))
        b = Checkpoint(tmp_path / "b.jsonl")
        b.append(_ok_record(cycles=11))
        assert a.canonical_bytes() != b.canonical_bytes()


class TestDiscard:
    def test_discard_removes_file_and_records(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ckpt = Checkpoint(path)
        ckpt.append(_ok_record())
        ckpt.discard()
        assert not path.exists()
        assert len(ckpt) == 0
