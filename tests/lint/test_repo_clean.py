"""The real source tree must satisfy simlint (modulo the committed
baseline), and an injected violation must be caught — the merge gate's
end-to-end acceptance criteria."""

import shutil
from pathlib import Path

from repro.lint import load, run_lint, screen
from repro.lint.baseline import DEFAULT_BASELINE
from repro.lint.cli import main as lint_main

REPO = Path(__file__).resolve().parents[2]


def test_repo_lints_clean_against_committed_baseline():
    findings = run_lint(REPO)
    baseline = load(REPO / DEFAULT_BASELINE)
    result = screen(findings, baseline)
    assert result.new == [], "new lint findings:\n%s" % "\n".join(
        f.render() for f in result.new
    )


def test_committed_baseline_has_no_stale_entries():
    """The ratchet: fixed violations must be removed from the baseline."""
    findings = run_lint(REPO)
    result = screen(findings, load(REPO / DEFAULT_BASELINE))
    assert result.stale == {}


def test_committed_baseline_stays_small():
    """ISSUE acceptance: the baseline holds at most a handful of entries."""
    baseline = load(REPO / DEFAULT_BASELINE)
    assert sum(baseline.values()) <= 5


def _copy_src(tmp_path: Path) -> Path:
    shutil.copytree(
        REPO / "src" / "repro", tmp_path / "src" / "repro",
        ignore=shutil.ignore_patterns("__pycache__", "*.egg-info"),
    )
    return tmp_path


def test_injected_wall_clock_in_gpusim_is_caught(tmp_path, capsys):
    root = _copy_src(tmp_path)
    sm = root / "src" / "repro" / "gpusim" / "sm.py"
    sm.write_text(
        sm.read_text()
        + "\n\ndef _leak_wallclock():\n"
        "    import time\n"
        "    return time.time()\n"
    )
    rc = lint_main([
        "--root", str(root), "--baseline",
        "--baseline-file", str(REPO / DEFAULT_BASELINE),
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "SL101" in out
    assert "src/repro/gpusim/sm.py:" in out


def test_injected_stats_typo_in_gpusim_is_caught(tmp_path):
    root = _copy_src(tmp_path)
    sm = root / "src" / "repro" / "gpusim" / "sm.py"
    sm.write_text(
        sm.read_text()
        + "\n\ndef _typo(sm):\n"
        "    sm.stats.instructionz = 1\n"
    )
    findings = run_lint(root)
    result = screen(findings, load(REPO / DEFAULT_BASELINE))
    assert any(f.rule == "SL302" for f in result.new)
