"""Crash-safety fuzzing: the lint engine must never raise on valid
Python, however contorted.

Two layers: a hypothesis grammar that assembles adversarial function
bodies from the control-flow shapes the CFG builder handles (nested
try/finally, loops, awaits, walrus, matches, lambdas...), and a sweep
that replays every real file under ``src/`` through every rule.  Both
assert the same invariant: parsing + CFG lowering + dataflow + all rules
+ suppression scanning complete without an exception.
"""

import ast
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lint.cfg import all_function_cfgs
from repro.lint.dataflow import ReachingDefinitions, solve
from repro.lint.engine import RepoContext, Suppressions
from repro.lint.registry import build_rules, rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC_FILES = sorted((REPO_ROOT / "src").rglob("*.py"))

NAMES = ("x", "y", "lease", "table", "cfg_", "self")


def _exhaust(source, path="src/repro/serve/fuzzed.py"):
    """Run the full engine surface over one source string."""
    tree = ast.parse(source)
    Suppressions.scan(path, source, rule_ids())
    for rule in build_rules(RepoContext()):
        rule.check(tree, path)
    for graph in all_function_cfgs(tree):
        graph.reachable()
        solve(graph, ReachingDefinitions(graph))


# ---------------------------------------------------------------------------
# Grammar: statements the CFG builder must survive in any nesting


@st.composite
def statements(draw, depth=0):
    name = draw(st.sampled_from(NAMES))
    other = draw(st.sampled_from(NAMES))
    simple = st.sampled_from([
        "pass",
        "%s = %s" % (name, other),
        "%s = open(%s)" % (name, other),
        "%s = table.grant(%s)" % (name, other),
        "table.release(%s)" % name,
        "%s.close()" % name,
        "del %s" % name,
        "return %s" % name,
        "return",
        "raise ValueError(%s)" % name,
        "yield %s" % name,
        "await %s.flush()" % name,
        "%s = await table.pull()" % name,
        "asyncio.create_task(%s.work())" % name,
        "global fuzz_global",
        "import os as %s" % name,
        "(%s := %s)" % (name, other),
        "assert %s" % name,
        "%s += 1" % name,
        "f = lambda: %s" % name,
        "break",
        "continue",
    ])
    if depth >= 2:
        return draw(simple)
    inner = statements(depth=depth + 1)

    def suite(body):
        return "\n".join("    " + line for line in body.splitlines())

    compound = [
        "if %s:\n%s" % (name, suite(draw(inner))),
        "if %s.ready():\n%s\nelse:\n%s"
        % (name, suite(draw(inner)), suite(draw(inner))),
        "while %s:\n%s" % (name, suite(draw(inner))),
        "while True:\n%s" % suite(draw(inner)),
        "for %s in %s:\n%s" % (name, other, suite(draw(inner))),
        "async for %s in %s:\n%s" % (name, other, suite(draw(inner))),
        "with open(%s) as %s:\n%s" % (other, name, suite(draw(inner))),
        "async with table.lock() as %s:\n%s" % (name, suite(draw(inner))),
        "try:\n%s\nexcept Exception as err:\n%s"
        % (suite(draw(inner)), suite(draw(inner))),
        "try:\n%s\nexcept ValueError:\n%s\nelse:\n%s\nfinally:\n%s"
        % tuple(suite(draw(inner)) for _ in range(4)),
        "try:\n%s\nfinally:\n%s" % (suite(draw(inner)), suite(draw(inner))),
        "def inner_%s():\n%s" % (name, suite(draw(inner))),
    ]
    return draw(st.one_of(simple, st.sampled_from(compound)))


@st.composite
def modules(draw):
    is_async = draw(st.booleans())
    body = draw(st.lists(statements(), min_size=1, max_size=5))
    header = "%sdef fuzzed(x, y, lease, table, cfg_, self):" % (
        "async " if is_async else ""
    )
    lines = [header]
    for stmt in body:
        lines.extend("    " + line for line in stmt.splitlines())
    return "\n".join(lines) + "\n"


@settings(
    max_examples=120, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(modules())
def test_engine_never_raises_on_generated_sources(source):
    try:
        compile(source, "<fuzz>", "exec")
    except SyntaxError:
        # grammar produced e.g. `await` outside async or `return` with
        # value in a generator context; the engine only sees parseable
        # files, so an unparseable draw is vacuously fine
        try:
            ast.parse(source)
        except SyntaxError:
            return
    _exhaust(source)


# ---------------------------------------------------------------------------
# Replay: every real source file through the whole surface


@pytest.mark.parametrize(
    "path", SRC_FILES, ids=lambda p: p.relative_to(REPO_ROOT).as_posix()
)
def test_engine_never_raises_on_real_sources(path):
    rel = path.relative_to(REPO_ROOT).as_posix()
    _exhaust(path.read_text(), rel)
