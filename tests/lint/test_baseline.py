"""Baseline grandfathering and the one-way ratchet."""

import json

import pytest

from repro.lint import BaselineError, load, run_lint, save, screen
from repro.lint.cli import main as lint_main

from .conftest import GUARDED, UNGUARDED, build_tree


def test_save_load_round_trip(tmp_path):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    findings = run_lint(tmp_path)
    assert findings
    baseline_path = tmp_path / "lint-baseline.json"
    counts = save(baseline_path, findings)
    assert load(baseline_path) == counts
    # the file is valid versioned JSON
    payload = json.loads(baseline_path.read_text())
    assert payload["version"] == 1
    assert payload["tool"] == "simlint"


def test_screen_grandfathers_known_findings(tmp_path):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    findings = run_lint(tmp_path)
    baseline = save(tmp_path / "b.json", findings)
    result = screen(findings, baseline)
    assert result.new == []
    assert sorted(result.grandfathered) == sorted(findings)
    assert result.stale == {}


def test_ratchet_new_violation_fails_even_with_baseline(tmp_path):
    """The acceptance property: a baseline never hides a *new* finding."""
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    baseline_path = tmp_path / "lint-baseline.json"
    save(baseline_path, run_lint(tmp_path))
    # introduce a brand-new violation in another module
    build_tree(tmp_path, {"src/repro/gpusim/newmod.py": "sl102_bad.py"})
    rc = lint_main(["--root", str(tmp_path), "--baseline"])
    assert rc == 1
    new = screen(run_lint(tmp_path), load(baseline_path)).new
    assert new and all(f.rule == "SL102" for f in new)


def test_ratchet_is_line_insensitive(tmp_path):
    """Shifting a grandfathered violation down a few lines does not
    resurrect it: fingerprints carry no line numbers."""
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    baseline = save(tmp_path / "b.json", run_lint(tmp_path))
    target = tmp_path / GUARDED
    target.write_text("# moved\n# down\n" + target.read_text())
    result = screen(run_lint(tmp_path), baseline)
    assert result.new == []


def test_stale_entries_are_reported(tmp_path):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    findings = run_lint(tmp_path)
    baseline = save(tmp_path / "b.json", findings)
    # fix the violations: every baseline entry is now stale
    build_tree(tmp_path, {GUARDED: "sl101_good.py"})
    result = screen(run_lint(tmp_path), baseline)
    assert result.new == [] and result.grandfathered == []
    assert set(result.stale) == set(baseline)


def test_excess_occurrences_beyond_count_are_new(tmp_path):
    """The baseline stores per-fingerprint *counts*: duplicating a
    grandfathered violation is a new finding, not more grandfather."""
    build_tree(tmp_path, {GUARDED: "sl502_bad.py"})
    findings = run_lint(tmp_path)
    assert len(findings) == 1
    baseline = save(tmp_path / "b.json", findings)
    target = tmp_path / GUARDED
    source = target.read_text()
    target.write_text(
        source + "\n\ndef load2(path):\n    try:\n        return open(path)\n"
        "    except:\n        return None\n"
    )
    result = screen(run_lint(tmp_path), baseline)
    assert len(result.grandfathered) == 1
    assert len(result.new) == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load(tmp_path / "nope.json") == {}


@pytest.mark.parametrize("payload", [
    "not json{",
    '{"version": 99, "findings": {}}',
    '{"version": 1, "findings": ["not", "a", "mapping"]}',
    '{"version": 1, "findings": {"fp": "not-a-count"}}',
])
def test_corrupt_baseline_raises(tmp_path, payload):
    path = tmp_path / "b.json"
    path.write_text(payload)
    with pytest.raises(BaselineError):
        load(path)


def test_corrupt_baseline_is_cli_usage_error(tmp_path):
    build_tree(tmp_path, {GUARDED: "sl101_good.py"})
    bad = tmp_path / "corrupt.json"
    bad.write_text("not json{")
    rc = lint_main([
        "--root", str(tmp_path), "--baseline", "--baseline-file", str(bad),
    ])
    assert rc == 2


def test_update_baseline_cli_writes_atomically(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py", UNGUARDED: "sl502_bad.py"})
    rc = lint_main(["--root", str(tmp_path), "--update-baseline"])
    assert rc == 0
    baseline_path = tmp_path / "lint-baseline.json"
    assert baseline_path.exists()
    counts = load(baseline_path)
    assert sum(counts.values()) == len(run_lint(tmp_path))
    # no temp litter left behind by the atomic replace
    litter = [p for p in tmp_path.iterdir() if p.name.startswith(".")]
    assert litter == []
    # and the freshly written baseline makes the gate pass
    assert lint_main(["--root", str(tmp_path), "--baseline"]) == 0
