"""SARIF 2.1.0 output: structural checks plus schema validation.

The schema below is a trimmed-but-faithful subset of the official
sarif-2.1.0 JSON schema covering everything simlint emits (log, run,
tool/driver/rules, results with locations and fingerprints), with
``additionalProperties: false`` kept strict at the layers we own so the
test fails if we emit a misspelled property.
"""

import json

import jsonschema
import pytest

from repro.lint import run_lint, to_sarif
from repro.lint.cli import main as lint_main
from repro.lint.registry import rule_ids
from repro.lint.sarif import FINGERPRINT_KEY, SARIF_VERSION

from .conftest import GUARDED, SERVE, build_tree

SARIF_SCHEMA_SUBSET = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "additionalProperties": False,
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ],
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"],
                    },
                    "originalUriBaseIds": {"type": "object"},
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "additionalProperties": False,
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error",
                                    ],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"},
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string",
                                                            },
                                                            "uriBaseId": {
                                                                "type": "string",
                                                            },
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {
                                        "type": "string",
                                    },
                                },
                                "baselineState": {
                                    "enum": [
                                        "new", "unchanged", "updated",
                                        "absent",
                                    ],
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def sarif_for(tmp_path, mapping):
    findings = run_lint(build_tree(tmp_path, mapping))
    return findings, to_sarif(findings)


def test_sarif_validates_against_the_schema(tmp_path):
    findings, log = sarif_for(
        tmp_path, {GUARDED: "sl101_bad.py", SERVE: "sl702_bad.py"}
    )
    assert findings
    jsonschema.validate(log, SARIF_SCHEMA_SUBSET)


def test_empty_run_still_validates(tmp_path):
    jsonschema.validate(to_sarif([]), SARIF_SCHEMA_SUBSET)


def test_every_catalog_rule_is_described(tmp_path):
    log = to_sarif([])
    described = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
    assert described == set(rule_ids())


def test_results_carry_rule_fingerprint_and_location(tmp_path):
    findings, log = sarif_for(tmp_path, {SERVE: "sl702_bad.py"})
    results = log["runs"][0]["results"]
    assert len(results) == len(findings)
    by_rule = {r["ruleId"]: r for r in results}
    leak = by_rule["SL702"]
    assert leak["level"] == "error"
    assert leak["baselineState"] == "new"
    assert leak["partialFingerprints"][FINGERPRINT_KEY]
    location = leak["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == SERVE
    assert location["region"]["startLine"] >= 1


def test_grandfathered_findings_marked_unchanged(tmp_path):
    findings = run_lint(build_tree(tmp_path, {SERVE: "sl702_bad.py"}))
    log = to_sarif([], grandfathered=findings)
    states = {r["baselineState"] for r in log["runs"][0]["results"]}
    assert states == {"unchanged"}


def test_cli_writes_sarif_file(tmp_path, capsys):
    build_tree(tmp_path, {SERVE: "sl702_bad.py"})
    out_file = tmp_path / "simlint.sarif"
    rc = lint_main(["--root", str(tmp_path), "--sarif", str(out_file)])
    assert rc == 1
    log = json.loads(out_file.read_text())
    assert log["version"] == SARIF_VERSION
    jsonschema.validate(log, SARIF_SCHEMA_SUBSET)
    assert any(
        r["ruleId"] == "SL702" for r in log["runs"][0]["results"]
    )


def test_cli_sarif_to_stdout(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_good.py"})
    rc = lint_main(["--root", str(tmp_path), "--sarif", "-"])
    assert rc == 0
    log = json.loads(capsys.readouterr().out.split("simlint:")[0])
    jsonschema.validate(log, SARIF_SCHEMA_SUBSET)
