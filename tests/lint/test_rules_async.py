"""SL6xx async-safety rules: positive and negative fixtures."""

from .conftest import SERVE, lint_tree, rules_hit


def hits(findings, rule):
    return [f for f in findings if f.rule == rule]


# ---------------------------------------------------------------------------
# SL601 — blocking calls in async defs


def test_sl601_blocking_calls_in_async_defs(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl601_bad.py"})
    found = hits(findings, "SL601")
    assert len(found) == 3
    assert any("time.sleep" in f.message for f in found)
    assert any("subprocess.run" in f.message for f in found)
    assert any("read_text" in f.message for f in found)


def test_sl601_async_safe_and_sync_code_clean(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl601_good.py"})
    assert "SL601" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# SL602 — shared-state bindings across await


def test_sl602_stale_binding_mutated_after_await(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl602_bad.py"})
    found = hits(findings, "SL602")
    assert len(found) == 1
    assert "'session'" in found[0].message
    assert "re-fetch" in found[0].message


def test_sl602_refetch_or_mutate_before_await_clean(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl602_good.py"})
    assert "SL602" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# SL603 — dropped tasks


def test_sl603_dropped_and_unused_tasks(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl603_bad.py"})
    found = hits(findings, "SL603")
    assert len(found) == 2
    assert any("dropped" in f.message for f in found)
    assert any("'pending'" in f.message for f in found)


def test_sl603_owned_tasks_clean(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl603_good.py"})
    assert "SL603" not in rules_hit(findings)
