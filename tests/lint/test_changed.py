"""``snake-repro lint --changed [REF]``: git-scoped file selection."""

import subprocess

from repro.lint.cli import main as lint_main

from .conftest import FIXTURES, GUARDED, UNGUARDED, build_tree


def git(root, *argv):
    subprocess.run(
        ["git", "-C", str(root)] + list(argv),
        check=True, capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(root),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def init_repo(root):
    git(root, "init", "-q")
    git(root, "add", "-A")
    git(root, "commit", "-q", "-m", "seed")


def test_changed_lints_only_the_touched_file(tmp_path, capsys):
    build_tree(tmp_path, {
        GUARDED: "sl101_good.py",
        UNGUARDED: "sl502_bad.py",  # pre-existing, untouched
    })
    init_repo(tmp_path)
    # introduce a violation in one tracked file only
    (tmp_path / GUARDED).write_text(
        (FIXTURES / "sl101_bad.py").read_text()
    )
    rc = lint_main(["--root", str(tmp_path), "--changed", "HEAD"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "SL101" in out
    assert "SL502" not in out  # untouched file was not linted


def test_changed_includes_untracked_files(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_good.py"})
    init_repo(tmp_path)
    build_tree(tmp_path, {UNGUARDED: "sl502_bad.py"})  # new, untracked
    rc = lint_main(["--root", str(tmp_path), "--changed", "HEAD"])
    assert rc == 1
    assert "SL502" in capsys.readouterr().out


def test_changed_with_no_diff_exits_clean(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    init_repo(tmp_path)
    rc = lint_main(["--root", str(tmp_path), "--changed", "HEAD"])
    assert rc == 0
    assert "no linted files differ" in capsys.readouterr().out


def test_changed_outside_git_falls_back_to_full_tree(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    rc = lint_main(["--root", str(tmp_path), "--changed", "HEAD"])
    captured = capsys.readouterr()
    assert rc == 1  # fell back to the full tree, which has a finding
    assert "SL101" in captured.out
    assert "linting the full tree" in captured.err


def test_changed_conflicts_with_explicit_paths(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_good.py"})
    rc = lint_main([
        "--root", str(tmp_path), "--changed", "HEAD",
        str(tmp_path / GUARDED),
    ])
    assert rc == 2
