"""Per-rule positive/negative fixtures for every simlint rule."""

import pytest

from repro.lint import run_lint

from .conftest import (
    CONFIG, EVENTS, GUARDED, STATS, UNGUARDED, build_tree, lint_tree, rules_hit
)


# ---------------------------------------------------------------------------
# Determinism (SL1xx) — guarded packages only.


@pytest.mark.parametrize("rule,bad,good", [
    ("SL101", "sl101_bad.py", "sl101_good.py"),
    ("SL102", "sl102_bad.py", "sl102_good.py"),
    ("SL103", "sl103_bad.py", "sl103_good.py"),
])
def test_determinism_rules(tmp_path, rule, bad, good):
    findings = lint_tree(tmp_path / "bad", {GUARDED: bad})
    assert rule in rules_hit(findings)
    findings = lint_tree(tmp_path / "good", {GUARDED: good})
    assert rule not in rules_hit(findings)


@pytest.mark.parametrize("bad", [
    "sl101_bad.py", "sl102_bad.py", "sl103_bad.py",
])
def test_determinism_rules_scope_to_simulator_packages(tmp_path, bad):
    """The same violation outside gpusim/core/prefetch is not flagged:
    analysis scripts may legitimately time themselves."""
    findings = lint_tree(tmp_path, {UNGUARDED: bad})
    assert not rules_hit(findings)


# ---------------------------------------------------------------------------
# Event schema (SL2xx) — needs the harvested obs/events.py schema.


def test_sl201_unknown_event_kwarg(tmp_path):
    findings = lint_tree(
        tmp_path, {EVENTS: "events_schema.py", GUARDED: "sl201_bad.py"}
    )
    hits = [f for f in findings if f.rule == "SL201"]
    assert len(hits) == 1
    assert "valu" in hits[0].message


def test_sl201_matching_payload_is_clean(tmp_path):
    findings = lint_tree(
        tmp_path, {EVENTS: "events_schema.py", GUARDED: "sl201_good.py"}
    )
    assert "SL201" not in rules_hit(findings)


def test_sl202_dict_payload(tmp_path):
    findings = lint_tree(
        tmp_path, {EVENTS: "events_schema.py", GUARDED: "sl202_bad.py"}
    )
    assert "SL202" in rules_hit(findings)


# ---------------------------------------------------------------------------
# Cycle accounting (SL3xx).


def test_sl301_clock_write_outside_advance_methods(tmp_path):
    findings = lint_tree(tmp_path / "bad", {GUARDED: "sl301_bad.py"})
    hits = [f for f in findings if f.rule == "SL301"]
    assert len(hits) == 1 and "sneak" in hits[0].message
    findings = lint_tree(tmp_path / "good", {GUARDED: "sl301_good.py"})
    assert "SL301" not in rules_hit(findings)


def test_sl303_cycle_crank_outside_event_core(tmp_path):
    findings = lint_tree(tmp_path / "bad", {GUARDED: "sl303_bad.py"})
    hits = [f for f in findings if f.rule == "SL303"]
    assert len(hits) == 1 and "horizon" in hits[0].message
    findings = lint_tree(tmp_path / "good", {GUARDED: "sl303_good.py"})
    assert "SL303" not in rules_hit(findings)


def test_sl303_event_core_modules_are_exempt(tmp_path):
    """sm.py / gpu.py *are* the event core: the skip-ahead loop may add
    to the clock (the +1 issue-cycle advance), so the same fixture that
    fires elsewhere is clean there."""
    findings = lint_tree(tmp_path, {"src/repro/gpusim/sm.py": "sl303_bad.py"})
    assert "SL303" not in rules_hit(findings)


def test_sl302_undeclared_stats_counter(tmp_path):
    findings = lint_tree(
        tmp_path, {STATS: "stats_schema.py", GUARDED: "sl302_bad.py"}
    )
    hits = [f for f in findings if f.rule == "SL302"]
    # one SimStats typo + one PrefetchStats typo
    assert len(hits) == 2
    assert any("instructionz" in f.message for f in hits)
    assert any("issuedd" in f.message for f in hits)


def test_sl302_declared_counters_are_clean(tmp_path):
    findings = lint_tree(
        tmp_path, {STATS: "stats_schema.py", GUARDED: "sl302_good.py"}
    )
    assert "SL302" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# Config drift (SL4xx) — needs the harvested gpusim/config.py schema.


def test_sl401_sl402_drifted_config(tmp_path):
    findings = lint_tree(tmp_path, {
        CONFIG: "config_drift.py",
        GUARDED: "config_reader.py",
    })
    hits = {f.rule: f for f in findings}
    assert "SL401" in hits and "unused_knob" in hits["SL401"].message
    assert "SL402" in hits and "unused_knob" in hits["SL402"].message
    # findings anchor at the field's definition line in config.py
    assert hits["SL401"].path.endswith("gpusim/config.py")
    assert hits["SL401"].line > 1


def test_sl401_sl402_clean_config(tmp_path):
    findings = lint_tree(tmp_path, {
        CONFIG: "config_clean.py",
        GUARDED: "config_reader.py",
    })
    assert "SL401" not in rules_hit(findings)
    assert "SL402" not in rules_hit(findings)


def test_sl403_nonexistent_field_reference(tmp_path):
    findings = lint_tree(tmp_path, {
        CONFIG: "config_clean.py",
        GUARDED: "config_reader.py",
        UNGUARDED: "sl403_bad.py",
    })
    hits = [f for f in findings if f.rule == "SL403"]
    assert len(hits) == 2
    assert any("num_smz" in f.message for f in hits)
    assert any("issue_widthh" in f.message for f in hits)


# ---------------------------------------------------------------------------
# API hygiene (SL5xx) — repo-wide.


@pytest.mark.parametrize("rule,bad,good", [
    ("SL501", "sl501_bad.py", "sl501_good.py"),
    ("SL502", "sl502_bad.py", "sl502_good.py"),
    ("SL503", "sl503_bad.py", "sl503_good.py"),
])
def test_hygiene_rules(tmp_path, rule, bad, good):
    findings = lint_tree(tmp_path / "bad", {UNGUARDED: bad})
    assert rule in rules_hit(findings)
    findings = lint_tree(tmp_path / "good", {UNGUARDED: good})
    assert rule not in rules_hit(findings)


# ---------------------------------------------------------------------------
# Suppressions (SL000).


def test_unjustified_suppression_silences_nothing(tmp_path):
    findings = lint_tree(tmp_path, {GUARDED: "sl000_unjustified.py"})
    hit = rules_hit(findings)
    assert "SL000" in hit  # the suppression itself is a finding
    assert "SL101" in hit  # ...and the violation still fires


def test_justified_suppression_silences_its_rule(tmp_path):
    findings = lint_tree(tmp_path, {GUARDED: "sl000_justified.py"})
    assert rules_hit(findings) == []


def test_suppression_with_unknown_rule_id(tmp_path):
    root = tmp_path / "src" / "repro" / "gpusim"
    root.mkdir(parents=True)
    (root / "mod.py").write_text(
        "x = 1  # simlint: disable=SL999 -- no such rule\n"
    )
    findings = run_lint(tmp_path)
    assert [f.rule for f in findings] == ["SL000"]
    assert "SL999" in findings[0].message


# ---------------------------------------------------------------------------
# Framework behaviour.


def test_findings_render_file_line_rule(tmp_path):
    findings = lint_tree(tmp_path, {GUARDED: "sl502_bad.py"})
    assert len(findings) == 1
    rendered = findings[0].render()
    assert rendered.startswith("src/repro/gpusim/mod_under_test.py:")
    assert "SL502" in rendered


def test_findings_are_sorted(tmp_path):
    findings = lint_tree(tmp_path, {
        GUARDED: "sl101_bad.py",
        "src/repro/core/another.py": "sl502_bad.py",
    })
    assert findings == sorted(findings)


def test_only_filter_limits_rules(tmp_path):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py", UNGUARDED: "sl502_bad.py"})
    findings = run_lint(tmp_path, only=["SL502"])
    assert rules_hit(findings) == ["SL502"]


def test_syntax_error_is_a_lint_error(tmp_path):
    from repro.lint import LintError

    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    (root / "broken.py").write_text("def f(:\n")
    with pytest.raises(LintError):
        run_lint(tmp_path)
