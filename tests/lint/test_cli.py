"""The ``snake-repro lint`` command-line contract."""

import json

from repro.cli import main as repro_main
from repro.lint.cli import JSON_SCHEMA_VERSION, main as lint_main
from repro.lint.registry import rule_ids

from .conftest import GUARDED, UNGUARDED, build_tree


def test_clean_tree_exits_zero(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_good.py"})
    rc = lint_main(["--root", str(tmp_path)])
    assert rc == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_file_line_rule(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    rc = lint_main(["--root", str(tmp_path)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "src/repro/gpusim/mod_under_test.py:" in out
    assert "SL101" in out


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_good.py"})
    rc = lint_main(["--root", str(tmp_path), "--rule", "SL999"])
    assert rc == 2
    assert "SL999" in capsys.readouterr().err


def test_rule_filter(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py", UNGUARDED: "sl502_bad.py"})
    rc = lint_main(["--root", str(tmp_path), "--rule", "SL502"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "SL502" in out and "SL101" not in out


def test_json_report_schema(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    rc = lint_main(["--root", str(tmp_path), "--json"])
    assert rc == 1
    report = json.loads(capsys.readouterr().out)
    assert set(report) == {
        "version", "clean", "findings", "grandfathered", "stale_baseline",
        "counts",
    }
    assert report["version"] == JSON_SCHEMA_VERSION
    assert report["clean"] is False
    assert report["counts"].get("SL101", 0) >= 1
    for entry in report["findings"]:
        assert set(entry) == {
            "path", "line", "col", "rule", "severity", "message"
        }


def test_json_report_clean(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_good.py"})
    rc = lint_main(["--root", str(tmp_path), "--json"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is True and report["findings"] == []


def test_list_rules_prints_whole_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids() | {"SL000"}:
        assert rule_id in out


def test_lint_subcommand_is_wired_into_snake_repro(tmp_path, capsys):
    """``snake-repro lint`` dispatches to the simlint CLI."""
    build_tree(tmp_path, {GUARDED: "sl101_bad.py"})
    rc = repro_main(["lint", "--root", str(tmp_path)])
    assert rc == 1
    assert "SL101" in capsys.readouterr().out


def test_explicit_paths_limit_the_lint(tmp_path, capsys):
    build_tree(tmp_path, {GUARDED: "sl101_bad.py", UNGUARDED: "sl502_bad.py"})
    rc = lint_main(["--root", str(tmp_path), "src/repro/analysis"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "SL502" in out and "SL101" not in out
