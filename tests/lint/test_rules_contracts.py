"""SL8xx cross-module contract rules: vocabulary harvest + conformance."""

from .conftest import EVENTS, PROTOCOL, RUNNER, SERVE, lint_tree, rules_hit


def hits(findings, rule):
    return [f for f in findings if f.rule == rule]


# ---------------------------------------------------------------------------
# SL801 — NACK reasons


def test_sl801_undeclared_reasons_at_produce_and_match_sites(tmp_path):
    findings = lint_tree(
        tmp_path, {PROTOCOL: "protocol_nack.py", SERVE: "sl801_bad.py"}
    )
    found = hits(findings, "SL801")
    assert len(found) == 2
    assert any("'busyy'" in f.message for f in found)
    assert any("'slow-clientt'" in f.message for f in found)


def test_sl801_declared_reasons_and_non_reason_strings_clean(tmp_path):
    findings = lint_tree(
        tmp_path, {PROTOCOL: "protocol_nack.py", SERVE: "sl801_good.py"}
    )
    assert "SL801" not in rules_hit(findings)


def test_sl801_silent_without_a_protocol_module(tmp_path):
    # no vocabulary harvested -> the rule cannot judge, so it stays quiet
    findings = lint_tree(tmp_path, {SERVE: "sl801_bad.py"})
    assert "SL801" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# SL802 — event action/phase vocabulary


def test_sl802_serve_constructor_emit_and_consumer_sites(tmp_path):
    findings = lint_tree(
        tmp_path, {EVENTS: "events_vocab.py", SERVE: "sl802_bad.py"}
    )
    found = hits(findings, "SL802")
    assert len(found) == 3
    assert any("'warp-speed'" in f.message for f in found)  # constructor
    assert any("'ejected'" in f.message for f in found)     # _emit helper
    assert any("'denied'" in f.message for f in found)      # consumer


def test_sl802_runner_emit_helpers(tmp_path):
    findings = lint_tree(
        tmp_path, {EVENTS: "events_vocab.py", RUNNER: "sl802_lease_bad.py"}
    )
    found = hits(findings, "SL802")
    assert len(found) == 2
    assert any("'yoink'" in f.message for f in found)
    assert any("'celebrated'" in f.message for f in found)


def test_sl802_declared_vocabulary_clean(tmp_path):
    findings = lint_tree(
        tmp_path, {EVENTS: "events_vocab.py", SERVE: "sl802_good.py"}
    )
    assert "SL802" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# SL803 — schema-version literals


def test_sl803_version_owner_using_bare_literals(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl803_bad.py"})
    found = hits(findings, "SL803")
    assert len(found) == 2


def test_sl803_named_constant_spelling_clean(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl803_good.py"})
    assert "SL803" not in rules_hit(findings)


def test_sl803_non_owner_modules_exempt(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl803_unversioned.py"})
    assert "SL803" not in rules_hit(findings)
