"""SL7xx resource-lifecycle rules: positive and negative fixtures,
including the proof that the path-sensitive engine catches what a
call-exists AST matcher cannot."""

import ast
from pathlib import Path

from .conftest import FIXTURES, RUNNER, SERVE, lint_tree, rules_hit


def hits(findings, rule):
    return [f for f in findings if f.rule == rule]


# ---------------------------------------------------------------------------
# SL701 — file handles


def test_sl701_exception_path_skips_close(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl701_bad.py"})
    found = hits(findings, "SL701")
    assert len(found) == 1
    assert "exceptional exit" in found[0].message
    assert "open()" in found[0].message


def test_sl701_with_finally_and_ownership_moves_clean(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl701_good.py"})
    assert "SL701" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# SL702 — leases


def test_sl702_catches_what_call_exists_matching_cannot(tmp_path):
    """The seeded leak: ``table.release(lease)`` is textually present, so
    an engine that only checks the release call exists passes the file.
    Only the CFG shows the exception path that skips it."""
    source = (Path(FIXTURES) / "sl702_bad.py").read_text()
    release_calls = [
        node for node in ast.walk(ast.parse(source))
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "release"
    ]
    assert release_calls, "fixture must contain a textual release call"

    findings = lint_tree(tmp_path, {SERVE: "sl702_bad.py"})
    found = hits(findings, "SL702")
    assert len(found) == 1
    assert "exceptional exit" in found[0].message
    assert "grant()" in found[0].message


def test_sl702_settled_paths_and_cross_method_ownership_clean(tmp_path):
    findings = lint_tree(tmp_path, {SERVE: "sl702_good.py"})
    assert "SL702" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# SL703 — breaker trials and futures


def test_sl703_trial_and_future_leaks(tmp_path):
    findings = lint_tree(tmp_path, {RUNNER: "sl703_bad.py"})
    found = hits(findings, "SL703")
    assert len(found) == 2
    assert any("answer_from_learner()" in f.message for f in found)
    assert any("create_future()" in f.message for f in found)


def test_sl703_settled_trials_and_owned_futures_clean(tmp_path):
    findings = lint_tree(tmp_path, {RUNNER: "sl703_good.py"})
    assert "SL703" not in rules_hit(findings)
