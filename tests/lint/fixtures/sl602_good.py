"""SL602 negative: re-fetch after the await, or mutate before it."""


class Server:
    async def handle(self, key):
        session = self.sessions[key]
        await self.flush()
        session = self.sessions[key]  # re-validated: fresh binding
        session.touch()
        return session

    async def warm(self, key):
        session = self.sessions[key]
        session.touch()  # mutation strictly before the await point
        await self.flush()
        return key
