"""SL702 negative: settled on every path, or cross-method ownership."""


def run_finally(table, key, worker, execute):
    lease = table.grant(key, worker)
    try:
        return execute(key)
    finally:
        table.release(lease)


def run_quarantine(table, key, worker, execute):
    lease = table.grant(key, worker)
    try:
        result = execute(key)
    except Exception:
        table.quarantine(lease)
        raise
    table.release(lease)
    return result


class Scheduler:
    def assign(self, key, worker):
        # self-rooted receiver: the lease lives on past this method and
        # is settled by the expiry sweep — cross-method ownership
        self._leases.grant(key, worker)
        return key
