"""SL103 negative: sets are sorted before iteration."""


def pcs(entries):
    out = []
    for pc in sorted(set(entries)):
        out.append(pc)
    return out


def names(items):
    return sorted({item.name for item in items})
