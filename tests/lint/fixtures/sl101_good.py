"""SL101 negative: simulated time comes from the component clock."""


class Component:
    def __init__(self) -> None:
        self.now = 0

    def stamp(self) -> int:
        return self.now
