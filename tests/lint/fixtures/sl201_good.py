"""SL201 negative: emit() payload matches the declared event fields."""

from repro.obs.events import PingEvent


def fire(bus):
    bus.emit(PingEvent(cycle=0, sm_id=1, value=3))
