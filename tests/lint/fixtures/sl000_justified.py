"""SL000 negative: a justified suppression silences its rule on that line."""

import time


def stamp() -> float:
    return time.time()  # simlint: disable=SL101 -- wall-clock used for log banner only
