"""GPUConfig with drift, harvested as repro/gpusim/config.py: one field is
never read anywhere (SL401) and one numeric field escapes validate() (SL402)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUConfig:
    num_sms: int = 4
    unused_knob: int = 7

    def validate(self) -> None:
        if self.num_sms < 1:
            raise ValueError("num_sms must be >= 1")
