"""Minimal event schema harvested as repro/obs/events.py in fixture trees."""

from dataclasses import dataclass


@dataclass
class Event:
    cycle: int
    sm_id: int


@dataclass
class PingEvent(Event):
    value: int = 0
