"""SL501 positive: mutable default arguments."""


def collect(item, into=[]):
    into.append(item)
    return into


def index(key, table={}):
    return table.get(key)
