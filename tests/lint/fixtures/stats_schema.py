"""Minimal stats schema harvested as repro/gpusim/stats.py in fixture trees."""

from dataclasses import dataclass, field


@dataclass
class PrefetchStats:
    issued: int = 0


@dataclass
class SimStats:
    cycles: int = 0
    instructions: int = 0
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)
