"""SL303 negative: the component is functional — it takes a timestamp
and returns a next-free horizon instead of ticking."""


class DRAMModel:
    def __init__(self) -> None:
        self.next_free = 0

    def request(self, now: int, latency: int) -> int:
        start = max(now, self.next_free)
        self.next_free = start + latency
        return self.next_free
