"""SL803 negative: a module that owns no version constant may carry
integer payload fields named ``v`` (it is not a schema owner)."""


def tally(state):
    return {"v": 3, "rows": list(state)}
