"""SL801 negative: declared reasons, and non-reason strings ignored."""

from .protocol import nack


def refuse(session):
    return nack("busy")


def is_slow(resp):
    return resp.get("error") == "slow-client"


def classify(resp):
    return resp.get("kind") == "aggregate"  # not reason-ish: out of scope
