"""SL000 positive: suppression without justification silences nothing."""

import time


def stamp() -> float:
    return time.time()  # simlint: disable=SL101
