"""SL802 positive (runner shape): undeclared lease action and job phase
through the scheduler emit helpers."""


class Scheduler:
    def _emit_lease(self, key, worker, action):
        self._sink.append((key, worker, action))

    def _emit_job(self, key, *, phase):
        self._sink.append((key, phase))

    def steal(self, key):
        self._emit_lease(key, "w0", "yoink")

    def finish(self, key):
        self._emit_job(key, phase="celebrated")
