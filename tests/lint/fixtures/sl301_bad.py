"""SL301 positive: the clock moves outside a designated advance method."""


class Component:
    def __init__(self) -> None:
        self.now = 0

    def sneak(self) -> None:
        self.now += 5
