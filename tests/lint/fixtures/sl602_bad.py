"""SL602 positive: a shared-state binding mutated across an await."""


class Server:
    async def handle(self, key):
        session = self.sessions[key]
        await self.flush()
        # the loop may have evicted the session while we were parked
        session.touch()
        return session
