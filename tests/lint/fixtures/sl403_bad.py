"""SL403 positive: references to GPUConfig fields that do not exist."""


def shape(config):
    return config.num_smz


def widen(config):
    return config.with_(issue_widthh=8)
