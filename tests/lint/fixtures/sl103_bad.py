"""SL103 positive: iterating a set in hash order is nondeterministic."""


def pcs(entries):
    out = []
    for pc in set(entries):
        out.append(pc)
    return out


def names(items):
    return list({item.name for item in items})
