"""SL302 positive: a typo'd counter write creates an unaudited attribute."""


class SM:
    def __init__(self, stats) -> None:
        self.stats = stats

    def step(self) -> None:
        self.stats.instructionz += 1
        self.stats.prefetch.issuedd += 1
