"""SL301 negative: the clock moves only in __init__/step/reset."""


class Component:
    def __init__(self) -> None:
        self.now = 0

    def step(self) -> None:
        self.now += 1

    def reset(self) -> None:
        self.now = 0
