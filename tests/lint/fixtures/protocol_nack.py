"""Minimal serve/protocol.py for fixture trees: the NACK vocabulary."""

NACK_REASONS = ("busy", "slow-client", "malformed", "draining")


def nack(reason):
    if reason not in NACK_REASONS:
        raise ValueError(reason)
    return {"error": reason}
