"""SL802 negative: only declared actions/phases appear anywhere."""

from repro.obs.events import ServeEvent


def record(sink, cycle):
    sink.append(ServeEvent(cycle=cycle, sm_id=0, action="accept"))


class Server:
    def _emit(self, action):
        self._sink.append(action)

    def drop_client(self):
        self._emit("deny")


def count_sheds(events):
    return sum(1 for ev in events if ev.action == "shed")
