"""SL702 positive: the seeded lease-leak-on-exception.

``table.release(lease)`` is textually present, so any engine that only
checks "does a release call exist" passes this file.  The leak is the
*path*: an exception inside ``execute`` jumps straight to the caller
with the lease still granted.
"""


def run_one(table, key, worker, execute):
    lease = table.grant(key, worker)
    result = execute(key)  # raises -> the release below never runs
    table.release(lease)
    return result
