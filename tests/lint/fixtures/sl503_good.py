"""SL503 negative: narrowing asserts (is not None / isinstance) are fine."""


def take(queue, item):
    assert queue is not None
    assert isinstance(item, int)
    if not queue:
        raise ValueError("queue must not be empty")
    return queue.pop()
