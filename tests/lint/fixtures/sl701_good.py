"""SL701 negative: with-block, try/finally, or ownership transfer."""


def dump_with(path, rows):
    with open(path, "w") as fh:
        for row in rows:
            fh.write(row)


def dump_finally(path, rows):
    fh = open(path, "w")
    try:
        for row in rows:
            fh.write(row)
    finally:
        fh.close()


def handoff(path):
    fh = open(path)
    return fh  # ownership moves to the caller


def register(path, registry):
    fh = open(path)
    registry.adopt(fh)  # ownership moves to the registry
