"""SL201 positive: emit() payload names a field the event does not declare."""

from repro.obs.events import PingEvent


def fire(bus):
    bus.emit(PingEvent(cycle=0, sm_id=1, valu=3))
