"""SL303 positive: a memory-side component cranks its clock per cycle."""


class DRAMModel:
    def __init__(self) -> None:
        self.now = 0

    def step(self) -> None:
        self.now += 1
