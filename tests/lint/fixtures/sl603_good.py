"""SL603 negative: every spawned task gets an owner."""

import asyncio


class Owner:
    async def go(self):
        self._task = asyncio.create_task(self.work())
        return None

    async def spawn(self):
        pending = asyncio.create_task(self.work())
        return await pending

    async def reap(self):
        pending = asyncio.ensure_future(self.work())
        pending.add_done_callback(self._on_done)
        return None
