"""SL502 positive: a bare except swallows KeyboardInterrupt and bugs alike."""


def load(path):
    try:
        return open(path).read()
    except:
        return None
