"""SL601 negative: async code that stays off the blocking surface, sync
code that may block freely, and blocking calls on unreachable paths."""

import asyncio
import time


class Handler:
    async def handle(self, payload):
        await asyncio.sleep(0)
        return payload

    async def slurp(self, loop, path):
        return await loop.run_in_executor(None, path.read_text)

    def snapshot(self):
        # sync context: blocking is fine here
        time.sleep(0.01)
        return 1

    async def early(self):
        return 0
        time.sleep(1)  # unreachable: the CFG proves no path gets here
