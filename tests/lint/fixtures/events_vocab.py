"""Minimal obs/events.py for fixture trees: event classes plus the
action/phase vocabulary tuples SL802 harvests."""

from dataclasses import dataclass

JOB_PHASES = ("start", "retry", "done", "failed")
LEASE_ACTIONS = ("grant", "release", "expire")
SERVE_ACTIONS = ("accept", "deny", "shed")


@dataclass
class Event:
    cycle: int
    sm_id: int


@dataclass
class ServeEvent(Event):
    action: str = ""


@dataclass
class RunnerLeaseEvent(Event):
    action: str = ""


@dataclass
class RunnerJobEvent(Event):
    phase: str = ""
