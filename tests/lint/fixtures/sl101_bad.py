"""SL101 positive: wall-clock reads inside the simulator core."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def when() -> object:
    return datetime.now()
