"""SL703 negative: both trial outcomes settled; future ownership moved."""


class Shard:
    def apply(self, breaker, learner, key):
        trial = breaker.answer_from_learner(learner, key)
        if not trial:
            return None  # no trial opened: nothing to settle
        try:
            value = learner.value(key)
        except Exception:
            breaker.on_fault()
            raise
        breaker.on_ok()
        return value


async def fanout(loop, queue, key):
    future = loop.create_future()
    queue.put_nowait((key, future))  # consumer owns it now
    return await future


async def cancel_on_overload(loop, queue, key):
    overloaded = queue.full()
    future = loop.create_future()
    if overloaded:  # a bare-name test cannot raise: no except edge
        future.cancel()
        return None
    queue.put_nowait((key, future))
    return await future
