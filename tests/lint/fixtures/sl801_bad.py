"""SL801 positive: undeclared NACK reasons at produce and match sites."""

from .protocol import nack


def refuse(session):
    return nack("busyy")  # typo: not in NACK_REASONS


def is_slow(resp):
    # this match can never fire against a real server
    return resp.get("error") == "slow-clientt"
