"""SL703 positive: a half-open trial and a future that can go unsettled."""


class Shard:
    def apply(self, breaker, learner, key):
        trial = breaker.answer_from_learner(learner, key)
        if trial:
            value = learner.value(key)  # raises -> on_fault never runs
            breaker.on_ok()
            return value
        return None


async def fanout(loop, queue, key):
    future = loop.create_future()
    if queue.full():
        return None  # the future is dropped unsettled on this path
    queue.put_nowait((key, future))
    return await future
