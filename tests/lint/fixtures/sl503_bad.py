"""SL503 positive: assert used for control flow (gone under python -O)."""


def take(queue):
    assert len(queue) > 0, "queue must not be empty"
    return queue.pop()
