"""GPUConfig without drift: every field is read and validate() covers both
numeric fields (the SL401/SL402 negative, harvested as config.py)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUConfig:
    num_sms: int = 4
    issue_width: int = 4

    def validate(self) -> None:
        if self.num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")

    def with_(self, **kwargs):
        import dataclasses
        return dataclasses.replace(self, **kwargs)
