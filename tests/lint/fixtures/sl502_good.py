"""SL502 negative: a typed except clause."""


def load(path):
    try:
        return open(path).read()
    except OSError:
        return None
