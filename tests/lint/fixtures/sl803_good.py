"""SL803 negative: the named constant is the only spelling."""

_STATE_VERSION = 3


def snapshot(state):
    return {"v": _STATE_VERSION, "rows": list(state)}


def load(payload):
    if payload.get("v") != _STATE_VERSION:
        raise ValueError("version drift")
    return payload["rows"]


def count(payload):
    return {"n": 3}  # not a version key: ignored
