"""SL202 positive: an ad-hoc dict payload bypasses the typed event schema."""


def fire(bus):
    bus.emit({"cycle": 0, "sm_id": 1, "value": 3})
