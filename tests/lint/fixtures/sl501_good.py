"""SL501 negative: None sentinel instead of a mutable default."""


def collect(item, into=None):
    into = into if into is not None else []
    into.append(item)
    return into
