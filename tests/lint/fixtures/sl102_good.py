"""SL102 negative: a seeded private RNG stream is deterministic."""

import random


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()
