"""SL102 positive: unseeded randomness in the simulator core."""

import os
import random


def jitter() -> float:
    return random.random()


def token() -> bytes:
    return os.urandom(8)
