"""SL601 positive: blocking calls reachable inside async defs."""

import time
import subprocess


class Handler:
    async def handle(self, payload):
        time.sleep(0.1)  # blocks the event loop
        return payload

    async def shell_out(self, argv):
        return subprocess.run(argv)

    async def slurp(self, path):
        return path.read_text()
