"""SL803 positive: a version-owning module spelling the version as a
bare integer literal in payloads and comparisons."""

_STATE_VERSION = 3


def snapshot(state):
    return {"v": 3, "rows": list(state)}


def load(payload):
    if payload.get("v") != 3:
        raise ValueError("version drift")
    return payload["rows"]
