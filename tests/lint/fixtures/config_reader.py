"""Reads config.num_sms and config.issue_width (the SL401 read harvest)."""


def shape(config):
    return config.num_sms * config.issue_width
