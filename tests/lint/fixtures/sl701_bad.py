"""SL701 positive: the close() exists, but an exception between open and
close skips it — only a path-sensitive engine can see the leak."""


def dump(path, rows):
    fh = open(path, "w")
    for row in rows:
        fh.write(row)  # a write that raises skips the close below
    fh.close()
