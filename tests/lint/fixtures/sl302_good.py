"""SL302 negative: every stats write targets a declared counter."""


class SM:
    def __init__(self, stats) -> None:
        self.stats = stats

    def step(self) -> None:
        self.stats.instructions += 1
        self.stats.prefetch.issued += 1
