"""SL603 positive: fire-and-forget tasks with no owner."""

import asyncio


class Owner:
    async def go(self):
        asyncio.create_task(self.work())  # dropped on the floor
        return None

    async def spawn(self):
        pending = asyncio.ensure_future(self.work())
        return None  # `pending` is never awaited, cancelled or stored
