"""SL802 positive: undeclared event actions at constructor, emit-helper
and consumer-comparison sites (serve-module shape)."""

from repro.obs.events import ServeEvent


def record(sink, cycle):
    sink.append(ServeEvent(cycle=cycle, sm_id=0, action="warp-speed"))


class Server:
    def _emit(self, action):
        self._sink.append(action)

    def drop_client(self):
        self._emit("ejected")


def count_denials(events):
    return sum(1 for ev in events if ev.action == "denied")
