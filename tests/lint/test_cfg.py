"""Structural tests for the per-function CFG builder."""

import ast
import textwrap

from repro.lint.cfg import all_function_cfgs, binds, func_path


def graphs_of(source):
    return all_function_cfgs(ast.parse(textwrap.dedent(source)))


def cfg_of(source, name=None):
    graphs = graphs_of(source)
    if name is None:
        assert len(graphs) == 1
        return graphs[0]
    return next(g for g in graphs if g.qualname == name)


def block_calling(graph, callee):
    """The block whose payload calls ``callee`` (bare or attribute name)."""
    for block in graph.blocks:
        for call in block.calls():
            if func_path(call.func)[-1] == callee:
                return block
    raise AssertionError("no block calls %s()" % callee)


def test_straight_line_reaches_exit():
    g = cfg_of("def f(x):\n    y = x + 1\n    return y\n")
    reachable = g.reachable()
    assert g.exit.bid in reachable
    assert g.qualname == "f"
    assert not g.is_async


def test_if_without_else_joins():
    g = cfg_of(
        """
        def f(x):
            if x.ready():
                x.fire()
            return x
        """
    )
    reachable = g.reachable()
    assert block_calling(g, "fire").bid in reachable
    assert g.exit.bid in reachable


def test_while_true_code_after_loop_needs_break():
    no_break = cfg_of(
        """
        def f(x):
            while True:
                x.spin()
            x.after()
        """
    )
    assert block_calling(no_break, "after").bid not in no_break.reachable()

    with_break = cfg_of(
        """
        def f(x):
            while True:
                if x.done():
                    break
            x.after()
        """
    )
    assert block_calling(with_break, "after").bid in with_break.reachable()


def test_code_after_return_is_unreachable():
    g = cfg_of(
        """
        def f(x):
            return x
            x.dead()
        """
    )
    assert block_calling(g, "dead").bid not in g.reachable()


def test_statement_exception_edge_reaches_raise_exit():
    g = cfg_of("def f(x):\n    x.boom()\n")
    assert g.raise_exit.bid in g.reachable()


def test_catch_all_handler_seals_the_raise_exit():
    g = cfg_of(
        """
        def f(x):
            try:
                x.boom()
            except Exception:
                pass
        """
    )
    assert g.raise_exit.bid not in g.reachable()


def test_narrow_handler_still_propagates():
    g = cfg_of(
        """
        def f(x):
            try:
                x.boom()
            except ValueError:
                pass
            return x
        """
    )
    # a non-ValueError escapes past the only handler
    assert g.raise_exit.bid in g.reachable()


def test_else_clause_exceptions_escape_own_handlers():
    g = cfg_of(
        """
        def f(x):
            try:
                x.step()
            except Exception:
                x.handle()
            else:
                x.boom()
        """
    )
    # from the else clause, an exception bypasses this try's handlers
    else_block = block_calling(g, "boom")
    downstream = g.reachable(else_block)
    assert g.raise_exit.bid in downstream
    assert block_calling(g, "handle").bid not in downstream


def test_bare_name_branch_test_has_no_exception_edge():
    g = cfg_of(
        """
        def f(flag, x):
            if flag:
                return x
            return None
        """
    )
    header = next(b for b in g.blocks if b.label == "if")
    assert not any(e.kind == "except" for e in header.succs)


def test_call_branch_test_keeps_its_exception_edge():
    g = cfg_of(
        """
        def f(x):
            if x.ready():
                return x
            return None
        """
    )
    header = next(b for b in g.blocks if b.label == "if")
    assert any(e.kind == "except" for e in header.succs)


def test_await_marks_blocks():
    g = cfg_of(
        """
        async def f(x, items):
            await x.flush()
            async for item in items:
                x.note(item)
            x.done()
        """
    )
    assert g.is_async
    assert block_calling(g, "flush").has_await
    assert not block_calling(g, "done").has_await
    # the async-for header crosses the loop even without an await expr
    header = next(b for b in g.blocks if b.label == "async-for")
    assert header.has_await


def test_finally_reached_from_return_and_exception():
    g = cfg_of(
        """
        def f(x):
            try:
                return x.work()
            finally:
                x.cleanup()
        """
    )
    cleanup = block_calling(g, "cleanup")
    assert cleanup.bid in g.reachable()
    assert g.exit.bid in g.reachable(cleanup)
    assert g.raise_exit.bid in g.reachable(cleanup)


def test_nested_defs_get_their_own_graphs():
    graphs = graphs_of(
        """
        def outer():
            def inner():
                return 1
            return inner

        class C:
            def method(self):
                return 2
        """
    )
    names = {g.qualname for g in graphs}
    assert names == {"outer", "outer.inner", "C.method"}
    # the nested body is opaque to the parent graph
    outer = next(g for g in graphs if g.qualname == "outer")
    assert all(
        not isinstance(stmt, ast.Return) or stmt.value is None
        or not isinstance(stmt.value, ast.Constant)
        for b in outer.blocks for stmt in b.stmts
    )


def test_binds_covers_every_binding_form():
    g = cfg_of(
        """
        def f(pairs, src):
            total = 0
            for key, value in pairs:
                total += value
            with open(src) as fh:
                data = fh.read()
            try:
                fh.close()
            except OSError as err:
                data = str(err)
            if (n := len(data)) > 0:
                return n
            return total
        """
    )
    bound = set()
    for block in g.blocks:
        bound |= binds(block)
    assert {"total", "key", "value", "fh", "data", "err", "n"} <= bound


def test_func_path_shapes():
    def path_of(src):
        call = ast.parse(src, mode="eval").body
        return func_path(call.func)

    assert path_of("time.sleep(1)") == ("time", "sleep")
    assert path_of("open(p)") == ("open",)
    assert path_of("self.journal.open()") == ("self", "journal", "open")
    assert path_of("get().close()") == ("?", "close")
