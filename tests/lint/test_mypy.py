"""The strict typing gate (runs only where mypy is installed — CI installs
it; the pinned local container does not ship it)."""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (CI-only gate)",
)


def test_mypy_strict_gate_passes():
    proc = subprocess.run(
        [
            sys.executable, "-m", "mypy",
            "--config-file", "pyproject.toml", "src/repro",
        ],
        cwd=REPO, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
