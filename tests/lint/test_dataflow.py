"""Dataflow solver tests: reaching definitions and must-release."""

import ast
import textwrap

from repro.lint.cfg import all_function_cfgs, func_path
from repro.lint.dataflow import ReachingDefinitions, find_leaks, solve


def cfg_of(source):
    graphs = all_function_cfgs(ast.parse(textwrap.dedent(source)))
    assert len(graphs) == 1
    return graphs[0]


def block_calling(graph, callee):
    for block in graph.blocks:
        for call in block.calls():
            if func_path(call.func)[-1] == callee:
                return block
    raise AssertionError("no block calls %s()" % callee)


def leaks_of(source, guard=None):
    """find_leaks for the ``t.acquire()`` site, with every block calling
    ``release`` (by any receiver) as a settle block."""
    graph = cfg_of(source)
    acquire = block_calling(graph, "acquire")
    settle = set()
    for block in graph.blocks:
        if block is acquire:
            continue
        if any(func_path(c.func)[-1] == "release" for c in block.calls()):
            settle.add(block.bid)
    return find_leaks(graph, acquire, settle, guard)


# ---------------------------------------------------------------------------
# Reaching definitions


def test_parameters_reach_from_entry_until_rebound():
    graph = cfg_of(
        """
        def f(x):
            use(x)
            x = fresh()
            use(x)
        """
    )
    problem = ReachingDefinitions(graph)
    solution = solve(graph, problem)
    first_use = block_calling(graph, "use")
    assert problem.defs_reaching(solution, first_use, "x") == {
        graph.entry.bid
    }
    # at exit the rebinding has killed the parameter definition
    at_exit = problem.defs_reaching(solution, graph.exit, "x")
    assert graph.entry.bid not in at_exit
    assert len(at_exit) == 1


def test_branches_merge_definitions():
    graph = cfg_of(
        """
        def f(flag):
            if flag:
                y = one()
            else:
                y = two()
            sink(y)
        """
    )
    problem = ReachingDefinitions(graph)
    solution = solve(graph, problem)
    assert len(problem.defs_reaching(solution, graph.exit, "y")) == 2


# ---------------------------------------------------------------------------
# Must-release


def test_exception_between_acquire_and_release_leaks():
    leaks = leaks_of(
        """
        def f(t, work):
            h = t.acquire()
            work(h)
            t.release(h)
        """
    )
    assert [leak.exit_kind for leak in leaks] == ["exception"]
    assert "exceptional exit" in leaks[0].describe()


def test_try_finally_settles_every_path():
    assert not leaks_of(
        """
        def f(t, work):
            h = t.acquire()
            try:
                work(h)
            finally:
                t.release(h)
        """
    )


def test_early_return_without_release_leaks_normal_exit():
    leaks = leaks_of(
        """
        def f(t, flag):
            h = t.acquire()
            if flag:
                return None
            t.release(h)
            return h
        """
    )
    assert "normal" in {leak.exit_kind for leak in leaks}


def test_guard_refutation_settles_the_false_branch():
    source = """
        def f(t, work):
            h = t.acquire()
            if h:
                work()
                t.release(h)
            return None
        """
    # without the guard, the false branch looks like a normal-exit leak
    assert any(l.exit_kind == "normal" for l in leaks_of(source))
    # with it, `if h:` being false proves nothing was acquired...
    leaks = leaks_of(source, guard="h")
    assert all(l.exit_kind != "normal" for l in leaks)
    # ...while work() raising between acquire and release still leaks
    assert [l.exit_kind for l in leaks] == ["exception"]


def test_acquire_that_raises_acquired_nothing():
    leaks = leaks_of(
        """
        def f(t):
            h = t.acquire()
        """
    )
    # the only leak is the normal fall-through; the acquire block's own
    # except edge carries the pre-state (nothing was acquired)
    assert [leak.exit_kind for leak in leaks] == ["normal"]


def test_settle_block_that_raises_still_settled():
    assert not leaks_of(
        """
        def f(t):
            h = t.acquire()
            t.release(h)
        """
    )


def test_witness_path_names_edge_kinds():
    leaks = leaks_of(
        """
        def f(t, work):
            h = t.acquire()
            work(h)
            t.release(h)
        """
    )
    assert leaks[0].describe() == "the exceptional exit via except"
