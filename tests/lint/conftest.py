"""Shared fixtures for the simlint tests.

The helpers build throwaway repo trees under ``tmp_path`` whose layout
mirrors the real one (``src/repro/...``), so the path-derived package
guards and the schema harvest behave exactly as they do on the real
source tree.
"""

from pathlib import Path
from typing import Dict, List

from repro.lint import Finding, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: canonical destinations inside a fixture tree
GUARDED = "src/repro/gpusim/mod_under_test.py"
UNGUARDED = "src/repro/analysis/mod_under_test.py"
EVENTS = "src/repro/obs/events.py"
STATS = "src/repro/gpusim/stats.py"
CONFIG = "src/repro/gpusim/config.py"
SERVE = "src/repro/serve/handlers.py"
RUNNER = "src/repro/runner/mod_under_test.py"
PROTOCOL = "src/repro/serve/protocol.py"


def build_tree(root: Path, mapping: Dict[str, str]) -> Path:
    """Install fixture files into ``root`` at repo-relative destinations."""
    for dest, fixture in mapping.items():
        target = root / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((FIXTURES / fixture).read_text())
    return root


def lint_tree(root: Path, mapping: Dict[str, str], **kwargs) -> List[Finding]:
    return run_lint(build_tree(root, mapping), **kwargs)


def rules_hit(findings: List[Finding]) -> List[str]:
    return [f.rule for f in findings]
